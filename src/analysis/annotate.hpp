// Compile-time parallelization: independence-based '&' annotation and
// determinacy analysis.
//
// The paper's benchmarks are annotated by &ACE's abstract-interpretation
// parallelizing compiler [Muthukumar & Hermenegildo 91]; this module is a
// (much simpler) stand-in: a syntactic sharing/groundness analysis that
// conservatively rewrites  g1, g2  into  g1 & g2  when the goals cannot
// share unbound variables at call time, plus a clause-level determinacy
// analysis used to predict where the runtime optimizations will fire.
//
// The analysis is deliberately conservative (strict independence): two
// goals are independent if they share no variables, except variables that
// are guaranteed ground at the first goal's call — here approximated by
// "bound by an arithmetic `is` earlier in the body" and "ground in the
// clause head position is not assumed" (heads bind unknown terms).
//
// It also demonstrates the paper's §1/§3.1 point: compile-time detection is
// necessarily approximate — determinacy and independence are runtime
// properties, which is why ACE's optimizations trigger at runtime. The
// tests compare this analyzer's predictions against the runtime counters.
#pragma once

#include <string>
#include <vector>

#include "db/database.hpp"

namespace ace {

struct AnnotateOptions {
  // Minimum number of body goals in a conjunction to consider splitting.
  unsigned min_goals = 2;
  // Treat calls to these predicates as "cheap" (never worth forking).
  bool skip_builtins = true;
};

// Rewrites a program: for each clause body, greedily groups maximal runs of
// pairwise-independent user-goal conjuncts with '&'. Returns the annotated
// program text (clauses re-printed).
std::string annotate_program(SymbolTable& syms, const std::string& source,
                             const AnnotateOptions& opts = {});

// Per-clause analysis result, exposed for tests and tooling.
struct GoalInfo {
  std::string name;
  unsigned arity = 0;
  std::vector<std::uint32_t> vars;  // variable slots occurring in the goal
  bool builtin_like = false;        // control construct or arithmetic
};

struct ClauseAnalysis {
  std::string head;
  std::vector<GoalInfo> goals;
  // Indices of body conjuncts grouped into one parallel conjunction;
  // groups of size 1 stay sequential.
  std::vector<std::vector<std::size_t>> groups;
};

std::vector<ClauseAnalysis> analyze_program(SymbolTable& syms,
                                            const std::string& source,
                                            const AnnotateOptions& opts = {});

// ---------------------------------------------------------------------------
// Determinacy analysis: can a call to pred/arity leave a choice point?
// Conservative three-valued answer.

enum class Determinacy {
  Det,      // at most one clause can match any call (first-arg index proof)
  Unknown,  // cannot be proven statically (the paper's point: runtime
            // checks see what static analysis cannot)
};

Determinacy analyze_determinacy(const Database& db, std::uint32_t sym,
                                unsigned arity);

}  // namespace ace
