// Compile-time parallelization: abstract-interpretation-driven '&'
// annotation, Conditional Graph Expressions, and determinacy analysis.
//
// The paper's benchmarks are annotated by &ACE's abstract-interpretation
// parallelizing compiler [Muthukumar & Hermenegildo 91]; this module now
// follows the same recipe. Goal independence is proved from the
// groundness + freeness + pair-sharing domain in analysis/absint: the
// joined abstract state before the first goal of a candidate group (over
// every call pattern the entry analysis reaches) must show no shared
// unbound variable and no may-share pair between any two members. An
// interprocedural purity analysis (analysis/purity) keeps goals with
// observable effects — assert/retract, stream output, snapshot_refresh,
// tabled calls, opaque metacalls — out of parallel groups and in their
// original order.
//
// Where independence is plausible but statically undecidable (blocking
// variables of mode Any), the annotator can emit a Conditional Graph
// Expression instead of giving up:
//
//     ( ground(X), indep(X, Y) -> g1 & g2 ; g1, g2 )
//
// The runtime checks (charged to CostCat::kCgeCheck) decide at call time;
// the else branch preserves the sequential program. Clauses the entry
// analysis never reaches stay sequential — compile-time detection is
// necessarily approximate (the paper's §1/§3.1 point), which is also why
// the runtime half of every optimization remains in place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.hpp"

namespace ace {

struct AnnotateOptions {
  // Minimum number of body goals in a conjunction to consider splitting.
  unsigned min_goals = 2;
  // Treat calls to these predicates as "cheap" (never worth forking).
  bool skip_builtins = true;
  // Prove independence with the abstract interpreter (polyvariant
  // groundness + freeness + pair-sharing). When off, falls back to the
  // legacy syntactic sharing approximation.
  bool use_absint = true;
  // Emit Conditional Graph Expressions where independence is undecidable
  // (instead of keeping those conjunctions sequential).
  bool cge = false;
  // Entry queries (Prolog text, e.g. "main(100)"). Empty: root predicates
  // under all-ground arguments — the same assumption the linter makes, so
  // annotator output is APL001-clean under the linter's default analysis.
  std::vector<std::string> entries;
};

// Rewrites a program: for each clause body, greedily groups maximal runs of
// pairwise-independent conjuncts with '&' (wrapped in a CGE when the proof
// needs runtime checks). Directives and already-annotated conjunctions are
// preserved verbatim, making the rewrite idempotent. Returns the annotated
// program text (clauses re-printed).
std::string annotate_program(SymbolTable& syms, const std::string& source,
                             const AnnotateOptions& opts = {});

// Per-clause analysis result, exposed for tests and tooling.
struct GoalInfo {
  std::string name;
  unsigned arity = 0;
  std::vector<std::uint32_t> vars;  // variable slots occurring in the goal
  bool builtin_like = false;        // control construct or arithmetic
  unsigned effects = 0;             // purity bits (see analysis/purity.hpp)
};

// One body group: parallel when it has >= 2 goals. `checks` holds the
// rendered CGE guards (ground/1, indep/2); empty means the group is
// unconditionally parallel (or sequential, for singleton groups).
struct ParGroup {
  std::vector<std::size_t> goals;
  std::vector<std::string> checks;
};

struct ClauseAnalysis {
  std::string head;
  std::string pred;        // "name/arity" ("" for directives / legacy path)
  int line = 0;            // 1-based source position (absint path only)
  int col = 0;
  bool directive = false;  // `:- ...` term: passed through verbatim
  std::vector<GoalInfo> goals;
  // Indices of body conjuncts grouped into one parallel conjunction;
  // groups of size 1 stay sequential. Mirrors par_groups for callers that
  // only need the index view.
  std::vector<std::vector<std::size_t>> groups;
  std::vector<ParGroup> par_groups;
};

std::vector<ClauseAnalysis> analyze_program(SymbolTable& syms,
                                            const std::string& source,
                                            const AnnotateOptions& opts = {});

// ---------------------------------------------------------------------------
// Determinacy analysis: can a call to pred/arity leave a choice point?
// Conservative three-valued answer.

enum class Determinacy {
  Det,      // at most one clause can match any call (first-arg index proof)
  Unknown,  // cannot be proven statically (the paper's point: runtime
            // checks see what static analysis cannot)
};

Determinacy analyze_determinacy(const Database& db, std::uint32_t sym,
                                unsigned arity);

}  // namespace ace
