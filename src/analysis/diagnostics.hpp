// Diagnostics engine for the static analyzer / linter: severities, stable
// lint codes, source spans and text/JSON rendering.
//
// Lint codes are stable identifiers (APLnnn) so CI configurations and
// NOLINT-style suppressions survive message-wording changes:
//
//   APL001  unsafe '&' conjunction: parallel goals may share an unbound
//           variable (the and-parallel analogue of a data race)
//   APL002  singleton variable (named variable used exactly once)
//   APL003  call to an undefined predicate
//   APL004  possibly-non-ground arithmetic (is/2 or comparison may see an
//           unbound variable)
//   APL005  unreachable clause (a preceding clause always commits first)
//   APL006  overlapping clauses (two clauses match the same call and the
//           predicate is not otherwise proven determinate) — pedantic
//   APL007  directly-recursive predicate that is neither tabled nor
//           provably determinate (likely exponential recomputation); the
//           fixit suggests `:- table name/arity.`
//   APL008  dynamic predicate asserted/retracted in one '&' branch and
//           read in a parallel sibling without snapshot_refresh/0
//   APL009  provably-independent conjunction left sequential: the
//           annotator's abstract-interpretation proof would allow '&'
//           here — pedantic advisor note
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ace {

enum class Severity : unsigned char { Note = 0, Warning = 1, Error = 2 };

const char* severity_name(Severity s);

// 1-based source position of the clause (or goal) the diagnostic refers to.
struct SourceSpan {
  int line = 0;
  int col = 0;
};

// Machine-applicable fix: insert `text` as its own line immediately before
// 1-based source line `line`. `line == 0` means "no machine-applicable
// fix". Applied by `ace_lint --fix`.
struct Fixit {
  int line = 0;
  std::string text;  // line to insert, without trailing '\n'
};

struct Diagnostic {
  std::string code;  // stable lint code, e.g. "APL001"
  Severity severity = Severity::Warning;
  SourceSpan span;
  std::string predicate;  // "name/arity" context ("" when not applicable)
  std::string message;
  Fixit fixit;
};

// Accumulates diagnostics; knows how to render them for terminals and CI.
class DiagnosticSink {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void add(const std::string& code, Severity sev, SourceSpan span,
           const std::string& predicate, const std::string& message);

  const std::vector<Diagnostic>& all() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t count(Severity s) const;
  std::size_t count_code(const std::string& code) const;

  // Stable order: by line, then column, then code.
  void sort_by_location();

  // "line:col: warning: message [APL001 name/2]" per line.
  std::string to_text() const;
  // JSON array of {code, severity, line, col, predicate, message}.
  std::string to_json() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace ace
