#include "analysis/diagnostics.hpp"

#include <algorithm>

#include "support/strutil.hpp"

namespace ace {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

void DiagnosticSink::add(const std::string& code, Severity sev,
                         SourceSpan span, const std::string& predicate,
                         const std::string& message) {
  add(Diagnostic{code, sev, span, predicate, message, Fixit{}});
}

std::size_t DiagnosticSink::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::size_t DiagnosticSink::count_code(const std::string& code) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.code == code) ++n;
  }
  return n;
}

void DiagnosticSink::sort_by_location() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     if (a.span.col != b.span.col) return a.span.col < b.span.col;
                     return a.code < b.code;
                   });
}

std::string DiagnosticSink::to_text() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += strf("%d:%d: %s: %s [%s", d.span.line, d.span.col,
                severity_name(d.severity), d.message.c_str(), d.code.c_str());
    if (!d.predicate.empty()) out += " " + d.predicate;
    out += "]\n";
  }
  return out;
}

std::string DiagnosticSink::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const Diagnostic& d : diags_) {
    if (!first) out += ",";
    first = false;
    out += strf(
        "{\"code\":\"%s\",\"severity\":\"%s\",\"line\":%d,\"col\":%d,"
        "\"predicate\":\"%s\",\"message\":\"%s\"",
        d.code.c_str(), severity_name(d.severity), d.span.line, d.span.col,
        json_escape(d.predicate).c_str(), json_escape(d.message).c_str());
    if (d.fixit.line > 0) {
      out += strf(",\"fixit\":{\"line\":%d,\"text\":\"%s\"}", d.fixit.line,
                  json_escape(d.fixit.text).c_str());
    }
    out += "}";
  }
  return out + "]";
}

}  // namespace ace
