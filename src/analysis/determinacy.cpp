#include "analysis/determinacy.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>

namespace ace {
namespace {

// ---------------------------------------------------------------------------
// Guard extraction

enum class CmpOp { Lt, Le, Eq, Ge, Gt, Neq };

// Mirror for swapped operands: k < X  ≡  X > k.
CmpOp mirror(CmpOp op) {
  switch (op) {
    case CmpOp::Lt:
      return CmpOp::Gt;
    case CmpOp::Le:
      return CmpOp::Ge;
    case CmpOp::Gt:
      return CmpOp::Lt;
    case CmpOp::Ge:
      return CmpOp::Le;
    default:
      return op;
  }
}

// Can `x OP1 y` and `x OP2 y` both hold for some integers x, y?
bool ops_satisfiable(CmpOp a, CmpOp b) {
  auto unsat = [](CmpOp p, CmpOp q) {
    switch (p) {
      case CmpOp::Lt:
        return q == CmpOp::Eq || q == CmpOp::Ge || q == CmpOp::Gt;
      case CmpOp::Le:
        return q == CmpOp::Gt;
      case CmpOp::Eq:
        return q == CmpOp::Neq || q == CmpOp::Lt || q == CmpOp::Gt;
      case CmpOp::Ge:
        return q == CmpOp::Lt;
      case CmpOp::Gt:
        return q == CmpOp::Lt || q == CmpOp::Le || q == CmpOp::Eq;
      case CmpOp::Neq:
        return q == CmpOp::Eq;
    }
    return false;
  };
  return !unsat(a, b) && !unsat(b, a);
}

constexpr std::int64_t kNegInf = INT64_MIN;
constexpr std::int64_t kPosInf = INT64_MAX;

// Per-argument-position numeric knowledge of one clause: the interval the
// value must lie in, plus excluded points.
struct NumRange {
  std::int64_t lo = kNegInf;
  std::int64_t hi = kPosInf;
  std::set<std::int64_t> neq;

  void constrain(CmpOp op, std::int64_t k) {
    switch (op) {
      case CmpOp::Lt:
        hi = std::min(hi, k == kNegInf ? k : k - 1);
        break;
      case CmpOp::Le:
        hi = std::min(hi, k);
        break;
      case CmpOp::Eq:
        lo = std::max(lo, k);
        hi = std::min(hi, k);
        break;
      case CmpOp::Ge:
        lo = std::max(lo, k);
        break;
      case CmpOp::Gt:
        lo = std::max(lo, k == kPosInf ? k : k + 1);
        break;
      case CmpOp::Neq:
        neq.insert(k);
        break;
    }
  }

  bool disjoint_with(const NumRange& o) const {
    const std::int64_t lo2 = std::max(lo, o.lo);
    const std::int64_t hi2 = std::min(hi, o.hi);
    if (lo2 > hi2) return true;
    // A point value excluded by the other side.
    if (lo == hi && o.neq.count(lo)) return true;
    if (o.lo == o.hi && neq.count(o.lo)) return true;
    return false;
  }
};

// Head-argument skeleton for disjointness: same role as the runtime
// IndexKey, but over every argument position.
struct ArgSkel {
  enum class Kind { Var, Int, Atom, List, Struct } kind = Kind::Var;
  std::uint64_t value = 0;  // Int payload, atom sym, or (fun sym<<12)|arity

  bool incompatible(const ArgSkel& o) const {
    if (kind == Kind::Var || o.kind == Kind::Var) return false;
    if (kind != o.kind) return true;
    if (kind == Kind::List) return false;  // both lists: may unify
    return value != o.value;
  }
};

struct VarCmp {  // guard between two head positions, e.g. X =< Y
  unsigned pos_a = 0;
  unsigned pos_b = 0;  // pos_a < pos_b, op normalized accordingly
  CmpOp op = CmpOp::Eq;
};

struct AtomTest {  // X == a / X \== a over a head position
  unsigned pos = 0;
  bool eq = true;
  std::uint32_t sym = 0;
};

struct GuardInfo {
  std::vector<ArgSkel> skel;
  std::map<unsigned, NumRange> num;  // head position -> numeric range
  // Positions of `num` whose range came (at least partly) from a guard an
  // *uninstantiated* argument cannot pass: an arithmetic comparison throws
  // on an unbound operand and `X == k` fails on unbound X. Ranges derived
  // only from head constants are not listed (a free call unifies with the
  // constant), and neither are `X \== k` exclusions (`\==` succeeds on an
  // unbound X).
  std::set<unsigned> guard_num_pos;
  std::vector<VarCmp> var_cmps;
  std::vector<AtomTest> atom_tests;
  bool has_cut = false;              // a '!' among top-level conjuncts
  bool most_general_head = false;    // all args distinct variables
  std::vector<Cell> tail_after_cut;  // conjuncts after the last top-level '!'
  std::vector<Cell> conjuncts;       // all top-level conjuncts
};

void flatten_conj(const SymbolTable& syms, const TermTemplate& tmpl, Cell c,
                  std::vector<Cell>& out) {
  if (c.tag() == Tag::Str) {
    const Cell f = tmpl.cells[c.payload()];
    if ((f.fun_symbol() == syms.known().comma ||
         f.fun_symbol() == syms.known().amp) &&
        f.fun_arity() == 2) {
      flatten_conj(syms, tmpl, tmpl.cells[c.payload() + 1], out);
      flatten_conj(syms, tmpl, tmpl.cells[c.payload() + 2], out);
      return;
    }
  }
  out.push_back(c);
}

std::optional<CmpOp> cmp_op_of(const std::string& n) {
  if (n == "<") return CmpOp::Lt;
  if (n == "=<") return CmpOp::Le;
  if (n == "=:=") return CmpOp::Eq;
  if (n == ">=") return CmpOp::Ge;
  if (n == ">") return CmpOp::Gt;
  if (n == "=\\=") return CmpOp::Neq;
  return std::nullopt;
}

bool is_test_goal(const SymbolTable& syms, const TermTemplate& tmpl, Cell c) {
  if (c.tag() == Tag::Atm) {
    const std::string& n = syms.name(c.symbol());
    return n == "true" || n == "!";
  }
  if (c.tag() != Tag::Str) return false;
  const Cell f = tmpl.cells[c.payload()];
  const std::string& n = syms.name(f.fun_symbol());
  if (f.fun_arity() == 2) {
    return cmp_op_of(n).has_value() || n == "==" || n == "\\==";
  }
  if (f.fun_arity() == 1) {
    return n == "var" || n == "nonvar" || n == "atom" || n == "integer" ||
           n == "atomic" || n == "compound" || n == "ground";
  }
  return false;
}

GuardInfo extract_guards(const SymbolTable& syms,
                         const AbsProgram::ClauseInfo& ci) {
  GuardInfo g;
  const TermTemplate& tmpl = ci.tmpl;

  // Head skeletons + head-position map for guard variables.
  std::map<std::uint32_t, unsigned> pos_of;  // var slot -> first head position
  std::set<std::uint32_t> head_vars_seen;
  bool all_distinct_vars = true;
  const std::uint64_t hp =
      (ci.head.tag() == Tag::Str) ? ci.head.payload() : 0;
  for (unsigned i = 0; i < ci.pred_arity; ++i) {
    const Cell a = tmpl.cells[hp + 1 + i];
    ArgSkel s;
    switch (a.tag()) {
      case Tag::VarSlot:
        s.kind = ArgSkel::Kind::Var;
        if (pos_of.count(a.var_slot()) == 0) pos_of[a.var_slot()] = i;
        if (!head_vars_seen.insert(a.var_slot()).second) {
          all_distinct_vars = false;
        }
        break;
      case Tag::Int:
        s.kind = ArgSkel::Kind::Int;
        s.value = static_cast<std::uint64_t>(a.integer());
        g.num[i].constrain(CmpOp::Eq, a.integer());
        all_distinct_vars = false;
        break;
      case Tag::Atm:
        s.kind = ArgSkel::Kind::Atom;
        s.value = a.symbol();
        all_distinct_vars = false;
        break;
      case Tag::Lst:
        s.kind = ArgSkel::Kind::List;
        all_distinct_vars = false;
        break;
      case Tag::Str: {
        const Cell f = tmpl.cells[a.payload()];
        s.kind = ArgSkel::Kind::Struct;
        s.value = (std::uint64_t{f.fun_symbol()} << 12) | f.fun_arity();
        all_distinct_vars = false;
        break;
      }
      default:
        all_distinct_vars = false;
        break;
    }
    g.skel.push_back(s);
  }
  g.most_general_head = all_distinct_vars;

  flatten_conj(syms, tmpl, ci.body, g.conjuncts);

  // Body scan: tests in the prefix become guard constraints; the tail after
  // the last top-level cut is what the determinacy fixpoint must prove.
  std::size_t last_cut = 0;  // index *after* the last '!'
  for (std::size_t i = 0; i < g.conjuncts.size(); ++i) {
    const Cell c = g.conjuncts[i];
    if (c.tag() == Tag::Atm && c.symbol() == syms.known().cut) {
      g.has_cut = true;
      last_cut = i + 1;
    }
  }
  for (std::size_t i = last_cut; i < g.conjuncts.size(); ++i) {
    g.tail_after_cut.push_back(g.conjuncts[i]);
  }

  for (const Cell c : g.conjuncts) {
    if (!is_test_goal(syms, tmpl, c)) break;  // guard prefix only
    if (c.tag() != Tag::Str) continue;        // 'true' / '!'
    const Cell f = tmpl.cells[c.payload()];
    if (f.fun_arity() != 2) continue;
    const std::string& n = syms.name(f.fun_symbol());
    const Cell l = tmpl.cells[c.payload() + 1];
    const Cell r = tmpl.cells[c.payload() + 2];
    auto head_pos = [&](Cell t) -> std::optional<unsigned> {
      if (t.tag() != Tag::VarSlot) return std::nullopt;
      auto it = pos_of.find(t.var_slot());
      if (it == pos_of.end()) return std::nullopt;
      return it->second;
    };
    if (auto op = cmp_op_of(n)) {
      if (auto pl = head_pos(l); pl && r.tag() == Tag::Int) {
        g.num[*pl].constrain(*op, r.integer());
        g.guard_num_pos.insert(*pl);
      } else if (auto pr = head_pos(r); pr && l.tag() == Tag::Int) {
        g.num[*pr].constrain(mirror(*op), l.integer());
        g.guard_num_pos.insert(*pr);
      } else if (auto pl2 = head_pos(l)) {
        if (auto pr2 = head_pos(r); pr2 && *pl2 != *pr2) {
          VarCmp vc;
          vc.pos_a = std::min(*pl2, *pr2);
          vc.pos_b = std::max(*pl2, *pr2);
          vc.op = (*pl2 < *pr2) ? *op : mirror(*op);
          g.var_cmps.push_back(vc);
        }
      }
    } else if (n == "==" || n == "\\==") {
      const bool eq = (n == "==");
      auto note = [&](Cell var, Cell val) {
        auto pv = head_pos(var);
        if (!pv) return;
        if (val.tag() == Tag::Atm) {
          g.atom_tests.push_back(AtomTest{*pv, eq, val.symbol()});
        } else if (val.tag() == Tag::Int) {
          g.num[*pv].constrain(eq ? CmpOp::Eq : CmpOp::Neq, val.integer());
          // `X == k` fails on unbound X (mode-independent exclusion);
          // `X \== k` succeeds on unbound X, so it stays head-level.
          if (eq) g.guard_num_pos.insert(*pv);
        }
      };
      note(l, r);
      note(r, l);
    }
  }
  return g;
}

// How strong is a mutual-exclusion proof between two clauses?
//
//   kNone         no proof.
//   kIndexedAny   valid only when the discriminating argument — at some
//                 position other than the first — is instantiated at call
//                 time. A free call unifies with both heads, so this is
//                 *not* evidence of determinacy for arbitrary calls, and
//                 the runtime's first-argument check cannot validate it.
//   kIndexedFirst same, but the discriminating position is the first
//                 argument: exactly what the engines' first-argument
//                 indexing (and StaticFacts::kDetIndexed) can check.
//   kAnyMode      valid for every call mode: the excluded side cannot
//                 succeed even on an unbound argument (arithmetic guards
//                 throw, `==` tests fail).
//
// The ordering is by strength; max() over all positions picks the best
// evidence for a pair, min() over all pairs the weakest for a predicate.
enum class Excl : int { kNone = 0, kIndexedAny = 1, kIndexedFirst = 2,
                        kAnyMode = 3 };

Excl max_excl(Excl a, Excl b) { return a > b ? a : b; }
Excl min_excl(Excl a, Excl b) { return a < b ? a : b; }
Excl indexed_at(unsigned pos) {
  return pos == 0 ? Excl::kIndexedFirst : Excl::kIndexedAny;
}

Excl guards_exclusive_class(const GuardInfo& a, const GuardInfo& b) {
  Excl ev = Excl::kNone;
  // Head skeleton disjointness: needs the argument instantiated (a free
  // call unifies with both constants), so the evidence is indexed.
  for (std::size_t i = 0; i < a.skel.size(); ++i) {
    if (a.skel[i].incompatible(b.skel[i])) {
      ev = max_excl(ev, indexed_at(static_cast<unsigned>(i)));
    }
  }
  // Numeric range disjointness. If either side's range involves a real
  // guard (arithmetic comparison / `==`), an uninstantiated call cannot
  // succeed through that side either, so the exclusion is mode-
  // independent; head constants alone only discriminate instantiated
  // calls.
  for (const auto& [pos, ra] : a.num) {
    auto it = b.num.find(pos);
    if (it != b.num.end() && ra.disjoint_with(it->second)) {
      const bool any_mode = a.guard_num_pos.count(pos) != 0 ||
                            b.guard_num_pos.count(pos) != 0;
      ev = max_excl(ev, any_mode ? Excl::kAnyMode : indexed_at(pos));
    }
  }
  // Head atom constant vs. ==/\== test, and contradictory tests.
  auto atom_clash = [&ev](const GuardInfo& x, const GuardInfo& y) {
    for (const AtomTest& t : x.atom_tests) {
      if (t.pos < y.skel.size() &&
          y.skel[t.pos].kind == ArgSkel::Kind::Atom) {
        const bool same = y.skel[t.pos].value == t.sym;
        if (t.eq ? !same : same) {
          // `X == a` fails on unbound X: any-mode. `X \== a` *succeeds*
          // on unbound X while the other head binds it: indexed only.
          ev = max_excl(ev, t.eq ? Excl::kAnyMode : indexed_at(t.pos));
        }
      }
      for (const AtomTest& u : y.atom_tests) {
        if (t.pos != u.pos) continue;
        // At least one of a contradictory ==/\== pair is an `==`, which
        // fails on unbound arguments: mode-independent either way.
        if ((t.eq && u.eq && t.sym != u.sym) ||
            (t.eq != u.eq && t.sym == u.sym)) {
          ev = max_excl(ev, Excl::kAnyMode);
        }
      }
    }
  };
  atom_clash(a, b);
  atom_clash(b, a);
  // Contradictory variable-variable comparisons (X =< Y vs. X > Y):
  // arithmetic throws on unbound operands, so neither clause can succeed
  // on a call that leaves them free — mode-independent.
  for (const VarCmp& ca : a.var_cmps) {
    for (const VarCmp& cb : b.var_cmps) {
      if (ca.pos_a == cb.pos_a && ca.pos_b == cb.pos_b &&
          !ops_satisfiable(ca.op, cb.op)) {
        ev = max_excl(ev, Excl::kAnyMode);
      }
    }
  }
  return ev;
}

bool guards_exclusive(const GuardInfo& a, const GuardInfo& b) {
  return guards_exclusive_class(a, b) != Excl::kNone;
}

// ---------------------------------------------------------------------------
// Determinacy fixpoint

// The analysis runs twice over the same evidence:
//
//   strict pass   proves `det`: at most one solution for ANY call. Only
//                 kAnyMode pairwise evidence (or cut commitment) counts,
//                 and body tails may rely only on strictly-determinate
//                 goals.
//   indexed pass  proves `det_indexed`: at most one solution for calls
//                 whose FIRST argument is GROUND. kIndexedFirst pairwise
//                 evidence also counts, and a body tail may rely on an
//                 indexed-determinate callee when its call-site first
//                 argument is provably ground on entry: every variable in
//                 it is either a subterm of this clause's own first head
//                 argument (ground by the premise — structural recursion
//                 like walk([_|T]) :- walk(T) goes through by induction)
//                 or bound by a preceding arithmetic goal (numbers are
//                 ground). Plain instantiation would NOT suffice: a
//                 partial list [X|_] selects one clause of a list walker
//                 yet leaves the recursive call free to multiply
//                 solutions.
//
// Both are greatest fixpoints (assume determinate, demote until stable),
// so structural recursion survives.

struct DetContext {
  const AbsProgram& prog;
  const SymbolTable& syms;
  const std::map<PredKey, bool>* strict;  // completed strict results, or
                                          // nullptr during the strict pass
  std::map<PredKey, bool>& det;  // current assumption (greatest fixpoint)
  bool indexed_pass = false;
};

void collect_vars(const TermTemplate& tmpl, Cell c,
                  std::set<std::uint32_t>& out) {
  switch (c.tag()) {
    case Tag::VarSlot:
      out.insert(c.var_slot());
      break;
    case Tag::Lst:
      collect_vars(tmpl, tmpl.cells[c.payload()], out);
      collect_vars(tmpl, tmpl.cells[c.payload() + 1], out);
      break;
    case Tag::Str: {
      const Cell f = tmpl.cells[c.payload()];
      for (unsigned i = 1; i <= f.fun_arity(); ++i) {
        collect_vars(tmpl, tmpl.cells[c.payload() + i], out);
      }
      break;
    }
    default:
      break;
  }
}

// If conjunct `c` succeeded, which variables must now be bound to numbers
// (hence ground)? Arithmetic comparisons and is/2 evaluate both operands
// and throw on an unbound variable, so success implies every variable
// they mention is instantiated to a number.
void note_bindings(const SymbolTable& syms, const TermTemplate& tmpl, Cell c,
                   std::set<std::uint32_t>& ground) {
  if (c.tag() != Tag::Str) return;
  const Cell f = tmpl.cells[c.payload()];
  if (f.fun_arity() != 2) return;
  const std::string& n = syms.name(f.fun_symbol());
  if (n == "is" || cmp_op_of(n).has_value()) {
    collect_vars(tmpl, tmpl.cells[c.payload() + 1], ground);
    collect_vars(tmpl, tmpl.cells[c.payload() + 2], ground);
  }
}

// Is the first argument of call `c` certainly ground, given the variables
// `ground` so far? True when every variable it mentions is known ground —
// in particular for variable-free constants and for bare variables from
// the clause head's first argument. (Arity-0 calls are vacuously
// "indexed": clause selection cannot depend on arguments they don't
// have.)
bool first_arg_ground(const TermTemplate& tmpl, Cell c, unsigned arity,
                      const std::set<std::uint32_t>& ground) {
  if (arity == 0) return true;
  std::set<std::uint32_t> vars;
  collect_vars(tmpl, tmpl.cells[c.payload() + 1], vars);
  for (std::uint32_t v : vars) {
    if (ground.count(v) == 0) return false;
  }
  return true;
}

bool goal_det(const DetContext& cx, const TermTemplate& tmpl, Cell c,
              const std::set<std::uint32_t>& ground) {
  const SymbolTable::Known& k = cx.syms.known();
  std::uint32_t sym = 0;
  unsigned arity = 0;
  if (c.tag() == Tag::Atm) {
    sym = c.symbol();
  } else if (c.tag() == Tag::Str) {
    const Cell f = tmpl.cells[c.payload()];
    sym = f.fun_symbol();
    arity = f.fun_arity();
  } else {
    return false;  // metacall of a variable: anything may happen
  }
  if (arity == 2 && (sym == k.comma || sym == k.amp)) {
    return goal_det(cx, tmpl, tmpl.cells[c.payload() + 1], ground) &&
           goal_det(cx, tmpl, tmpl.cells[c.payload() + 2], ground);
  }
  if (arity == 2 && sym == k.semicolon) {
    // If-then-else commits to one branch; each branch must be determinate.
    const Cell l = tmpl.cells[c.payload() + 1];
    if (l.tag() == Tag::Str) {
      const Cell f = tmpl.cells[l.payload()];
      if (f.fun_symbol() == k.arrow && f.fun_arity() == 2) {
        return goal_det(cx, tmpl, tmpl.cells[l.payload() + 2], ground) &&
               goal_det(cx, tmpl, tmpl.cells[c.payload() + 2], ground);
      }
    }
    return false;  // plain disjunction: both branches may succeed
  }
  if (arity == 2 && sym == k.arrow) {
    return goal_det(cx, tmpl, tmpl.cells[c.payload() + 2], ground);
  }
  if (arity == 1 && (sym == k.naf)) return true;  // at most one success
  auto it = cx.det.find(pred_key(sym, arity));
  if (it != cx.det.end()) {
    // Strict determinacy of the callee holds for every call mode.
    if (cx.strict != nullptr) {
      auto st = cx.strict->find(pred_key(sym, arity));
      if (st != cx.strict->end() && st->second) return true;
    }
    if (!it->second) return false;
    if (!cx.indexed_pass) return true;
    // Indexed determinacy only covers this call if its first argument is
    // ground whenever control reaches it.
    return first_arg_ground(tmpl, c, arity, ground);
  }
  // Builtins and undefined predicates: every builtin in the registry is
  // semi-deterministic except via its goal argument, which findall/\+
  // confine; treat calls we know nothing about as determinate only when
  // they are builtin-registered. (Undefined predicates simply fail.)
  return true;
}

// Check the clause's post-cut tail, threading the known-ground variable
// set through the whole body in order (guard-prefix bindings count too).
// In the indexed pass the clause is being proven determinate *under the
// premise that its own first argument is ground*, so every variable of
// the head's first argument starts out ground — subterms of a ground term
// are ground.
bool clause_tail_det(const DetContext& cx, const AbsProgram::ClauseInfo& ci,
                     const GuardInfo& g) {
  std::set<std::uint32_t> ground;
  if (cx.indexed_pass && ci.pred_arity > 0 && ci.head.tag() == Tag::Str) {
    collect_vars(ci.tmpl, ci.tmpl.cells[ci.head.payload() + 1], ground);
  }
  const std::size_t tail_start = g.conjuncts.size() - g.tail_after_cut.size();
  for (std::size_t i = 0; i < g.conjuncts.size(); ++i) {
    const Cell c = g.conjuncts[i];
    if (i >= tail_start && !goal_det(cx, ci.tmpl, c, ground)) return false;
    note_bindings(cx.syms, ci.tmpl, c, ground);
  }
  return true;
}

std::map<PredKey, bool> run_det_pass(const AbsProgram& prog,
                                     const SymbolTable& syms,
                                     const std::vector<GuardInfo>& guards,
                                     const std::map<PredKey, bool>& shape,
                                     const std::map<PredKey, bool>* strict,
                                     bool indexed_pass) {
  std::map<PredKey, bool> det = shape;
  DetContext cx{prog, syms, strict, det, indexed_pass};
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [pk, idxs] : prog.preds) {
      if (!det[pk]) continue;
      bool ok = true;
      for (std::size_t idx : idxs) {
        // Goals before the last top-level cut are pruned by it; only the
        // tail must be determinate.
        if (!clause_tail_det(cx, prog.clauses[idx], guards[idx])) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        det[pk] = false;
        changed = true;
      }
    }
  }
  return det;
}

}  // namespace

bool clauses_mutually_exclusive(const AbsProgram& prog,
                                const SymbolTable& syms, std::size_t a,
                                std::size_t b) {
  const GuardInfo ga = extract_guards(syms, prog.clauses[a]);
  const GuardInfo gb = extract_guards(syms, prog.clauses[b]);
  return guards_exclusive(ga, gb);
}

DeterminacyResult analyze_determinacy_program(const AbsProgram& prog,
                                              const SymbolTable& syms) {
  DeterminacyResult out;

  std::vector<GuardInfo> guards;
  guards.reserve(prog.clauses.size());
  for (const auto& ci : prog.clauses) {
    guards.push_back(extract_guards(syms, ci));
  }

  // Per-predicate structural facts: the weakest pairwise-exclusion
  // evidence across all clause pairs, and cut commitment (every non-last
  // clause cuts, which is mode-independent: a clause that succeeds has
  // passed its cut and pruned the rest).
  std::map<PredKey, bool> shape_strict;   // clause-selection level only
  std::map<PredKey, bool> shape_indexed;
  for (const auto& [pk, idxs] : prog.preds) {
    Excl weakest = Excl::kAnyMode;
    for (std::size_t i = 0; i < idxs.size(); ++i) {
      for (std::size_t j = i + 1; j < idxs.size(); ++j) {
        weakest = min_excl(weakest, guards_exclusive_class(guards[idxs[i]],
                                                           guards[idxs[j]]));
      }
    }
    bool cut_committed = true;
    for (std::size_t i = 0; i + 1 < idxs.size(); ++i) {
      if (!guards[idxs[i]].has_cut) {
        cut_committed = false;
        break;
      }
    }
    shape_strict[pk] = weakest == Excl::kAnyMode || cut_committed;
    shape_indexed[pk] = weakest >= Excl::kIndexedFirst || cut_committed;
  }

  const std::map<PredKey, bool> det_strict = run_det_pass(
      prog, syms, guards, shape_strict, /*strict=*/nullptr,
      /*indexed_pass=*/false);
  const std::map<PredKey, bool> det_indexed = run_det_pass(
      prog, syms, guards, shape_indexed, &det_strict, /*indexed_pass=*/true);

  for (const auto& [pk, idxs] : prog.preds) {
    PredStaticAnalysis pa;
    pa.det = det_strict.at(pk);
    pa.det_indexed = det_indexed.at(pk) || pa.det;
    pa.no_choice = idxs.size() <= 1;

    // LAO-chain shape: several clauses, not even index-determinate (so the
    // or-engine keeps re-visiting the frame), last clause directly
    // tail-recursive, earlier clauses leaf (no user calls).
    if (idxs.size() >= 2 && !pa.det_indexed) {
      const std::size_t last = idxs.back();
      const auto& tail = guards[last].conjuncts;
      bool tail_rec = false;
      if (!tail.empty()) {
        const Cell g = tail.back();
        if (g.tag() == Tag::Str) {
          const Cell f = prog.clauses[last].tmpl.cells[g.payload()];
          tail_rec = pred_key(f.fun_symbol(), f.fun_arity()) == pk;
        } else if (g.tag() == Tag::Atm) {
          tail_rec = pred_key(g.symbol(), 0) == pk;
        }
      }
      bool earlier_leaf = true;
      for (std::size_t i = 0; i + 1 < idxs.size() && earlier_leaf; ++i) {
        for (const Cell g : guards[idxs[i]].conjuncts) {
          const TermTemplate& tmpl = prog.clauses[idxs[i]].tmpl;
          std::uint32_t sym = 0;
          unsigned ar = 0;
          if (g.tag() == Tag::Atm) {
            sym = g.symbol();
          } else if (g.tag() == Tag::Str) {
            const Cell f = tmpl.cells[g.payload()];
            sym = f.fun_symbol();
            ar = f.fun_arity();
          } else {
            earlier_leaf = false;
            break;
          }
          if (prog.defines(sym, ar)) {
            earlier_leaf = false;
            break;
          }
        }
      }
      pa.lao_chain = tail_rec && earlier_leaf;
    }
    out.preds[pk] = pa;

    // Unreachable clauses: an earlier most-general clause that immediately
    // cuts (or is a fact) always commits first.
    for (std::size_t i = 0; i < idxs.size(); ++i) {
      const GuardInfo& gi = guards[idxs[i]];
      const bool commits_always =
          gi.most_general_head &&
          (gi.conjuncts.empty() ||
           (prog.clauses[idxs[i]].body.tag() == Tag::Atm &&
            prog.clauses[idxs[i]].body.symbol() == syms.known().truesym) ||
           (gi.conjuncts[0].tag() == Tag::Atm &&
            gi.conjuncts[0].symbol() == syms.known().cut));
      if (commits_always && gi.has_cut && i + 1 < idxs.size()) {
        for (std::size_t j = i + 1; j < idxs.size(); ++j) {
          out.unreachable.push_back(idxs[j]);
        }
        break;
      }
    }

    // Overlapping pairs (pedantic note material).
    if (!pa.det_indexed && idxs.size() >= 2) {
      for (std::size_t i = 0; i < idxs.size(); ++i) {
        for (std::size_t j = i + 1; j < idxs.size(); ++j) {
          if (!guards_exclusive(guards[idxs[i]], guards[idxs[j]]) &&
              !guards[idxs[i]].has_cut) {
            out.overlapping.push_back(ClauseOverlap{idxs[i], idxs[j]});
          }
        }
      }
    }
  }
  return out;
}

}  // namespace ace
