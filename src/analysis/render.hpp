// Precedence-aware rendering of clause templates back to source text.
//
// The fixed operator table (parse/ops.hpp) determines where parentheses are
// required: a subterm whose principal functor is an operator of priority p
// needs parentheses whenever it appears in a context that only accepts
// priority < p. The naive renderer used to drop parentheses around ';'/'->'
// conjuncts, so `g, (c -> a ; b)` re-parsed with a different shape; this
// renderer guarantees parse(render(t)) == t structurally (and is tested
// against every shipped workload program).
#pragma once

#include <string>

#include "term/build.hpp"
#include "term/symtab.hpp"

namespace ace {

// Renders `c` (a cell of `tmpl`) as text parseable in a context that accepts
// operator priority up to `max_prec`. Arguments of functional notation and
// list items use 999, clause roots 1200.
std::string render_template(const SymbolTable& syms, const TermTemplate& tmpl,
                            Cell c, int max_prec);

// Renders a whole clause template (root priority 1200), without the final '.'.
std::string render_clause(const SymbolTable& syms, const TermTemplate& tmpl);

}  // namespace ace
