// The load-time static-facts pass: runs the determinacy analysis
// (determinacy.hpp) and the groundness interpreter (absint.hpp) over all
// live clauses of a Database and attaches packed StaticFacts bits (see
// db/predicate.hpp) to every defined predicate.
//
// Engines running with EngineConfig::static_facts consult the bits at the
// LPCO/SHALLOW/PDO/LAO trigger sites: a proven property elides the charged
// runtime applicability test (CostModel::opt_check) and counts as a
// Counters::static_elisions instead. kDetIndexed is honoured only for
// calls whose first argument is ground — the mode the indexed
// exclusivity proof assumed (Worker::goal_static_det). Facts never alter
// control flow, so
// solutions are identical with and without them; assert/retract clears a
// predicate's bits (db/predicate.cpp), after which its sites simply charge
// again until the pass is re-run.
#pragma once

#include <cstddef>
#include <string>

#include "db/database.hpp"

namespace ace {

struct StaticFactsReport {
  std::size_t preds_analyzed = 0;     // predicates that received kValid
  std::size_t det = 0;                // ... with a mode-independent
                                      //     determinacy fact
  std::size_t det_indexed = 0;        // ... determinate when the first
                                      //     argument is instantiated
                                      //     (superset of `det`)
  std::size_t no_choice = 0;          // ... with a no-choice fact
  std::size_t lao_chain = 0;          // ... with a LAO generator-shape fact
  std::size_t ground_on_success = 0;  // ... ground-on-success under top

  // Compact JSON object ({"preds":N,"det":N,...}).
  std::string to_json() const;
};

// Idempotent; safe to re-run after mutations. Analysis failures cannot
// occur (the database holds already-parsed clauses); predicates the
// analysis cannot prove anything about get kValid with no property bits.
StaticFactsReport compute_static_facts(Database& db);

}  // namespace ace
