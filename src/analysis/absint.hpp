// Goal-dependent abstract interpretation over a groundness + freeness +
// pair-sharing domain (a compact cousin of the Sharing+Freeness domain used
// by &-Prolog/&ACE's parallelizing compiler [Muthukumar & Hermenegildo]).
//
// Per clause variable the analysis tracks a mode
//
//     Ground  definitely bound to a ground term
//     Free    definitely an unbound variable
//     Any     anything (bound, partially bound, or aliased)
//
// plus a set of may-share pairs (two variables that may reach a common
// unbound variable). Predicates are summarized per *call pattern*
// (polyvariant): per-argument modes + may-share pairs between argument
// positions; success summaries are joined over clauses and memoized, with a
// chaotic iteration to reach a fixpoint over recursive predicates. Builtins
// get dedicated transfer functions (`is/2` grounds both sides on success,
// comparisons ground their operands, `=/2` unifies abstractly, ...).
//
// Clients: the '&'-safety linter (pre-states at parallel conjunctions), the
// arithmetic-groundness lint, and the static-facts pass (ground-on-success
// under the most general call pattern).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "builtins/builtins.hpp"
#include "parse/parser.hpp"
#include "term/build.hpp"
#include "term/symtab.hpp"

namespace ace {

class Database;

enum class AbsMode : unsigned char { Ground = 0, Free = 1, Any = 2 };

AbsMode join_mode(AbsMode a, AbsMode b);
const char* mode_name(AbsMode m);

// Collects the distinct variable slots of a template subterm (sorted).
std::vector<std::uint32_t> collect_template_vars(const TermTemplate& tmpl,
                                                 Cell c);

// Abstract description of a predicate call or success exit: one mode per
// argument position plus may-share pairs between argument positions.
struct ArgPattern {
  std::vector<AbsMode> modes;
  std::set<std::pair<unsigned, unsigned>> share;  // (i, j) with i < j

  static ArgPattern top(unsigned arity);         // all Any, all pairs share
  static ArgPattern all_ground(unsigned arity);  // all Ground, no sharing

  void join(const ArgPattern& o);
  bool operator==(const ArgPattern& o) const;
  bool operator<(const ArgPattern& o) const;
  std::string describe() const;  // e.g. "(g,f,a) share={0-2}"
};

// Success summary of (predicate, call pattern).
struct SuccessSummary {
  bool may_succeed = false;
  ArgPattern exit;  // meaningful only when may_succeed

  bool operator==(const SuccessSummary& o) const {
    return may_succeed == o.may_succeed &&
           (!may_succeed || exit == o.exit);
  }
};

// Clause-local abstract state: a mode per variable slot + may-share pairs.
struct AbsState {
  std::vector<AbsMode> modes;
  std::set<std::pair<std::uint32_t, std::uint32_t>> share;

  explicit AbsState(std::uint32_t nvars = 0)
      : modes(nvars, AbsMode::Free) {}

  AbsMode mode(std::uint32_t v) const { return modes[v]; }
  bool is_ground(std::uint32_t v) const { return modes[v] == AbsMode::Ground; }
  void set_ground(std::uint32_t v);
  void demote(std::uint32_t v);  // Free -> Any (Ground stays Ground)
  void add_share(std::uint32_t a, std::uint32_t b);
  bool may_share(std::uint32_t a, std::uint32_t b) const;
  // Variables possibly aliased with v (excluding v itself).
  std::vector<std::uint32_t> aliases_of(std::uint32_t v) const;
  void join(const AbsState& o);
  bool operator==(const AbsState& o) const {
    return modes == o.modes && share == o.share;
  }
};

using PredKey = std::uint64_t;
inline PredKey pred_key(std::uint32_t sym, unsigned arity) {
  return (static_cast<std::uint64_t>(sym) << 12) | arity;
}

// Program view for analysis: all clauses (program + optionally the Prolog
// library), grouped per predicate in source order.
struct AbsProgram {
  struct ClauseInfo {
    TermTemplate tmpl;
    Cell head;  // head subterm cell (== root for facts)
    Cell body;  // body subterm cell (atom `true` for facts)
    std::uint32_t pred_sym = 0;
    unsigned pred_arity = 0;
    SourceSpan span;
    bool from_library = false;
  };

  std::vector<ClauseInfo> clauses;
  std::map<PredKey, std::vector<std::size_t>> preds;  // source order
  // Predicates declared `:- table name/arity.` — the linter uses this to
  // suppress APL007 on predicates the programmer already tables.
  std::set<PredKey> tabled;
  // Predicates declared `:- dynamic name/arity.` — the linter uses this
  // for APL008 (assert/retract inside a '&'-parallel region).
  std::set<PredKey> dynamic;

  bool defines(std::uint32_t sym, unsigned arity) const {
    return preds.count(pred_key(sym, arity)) != 0;
  }
  bool is_tabled(std::uint32_t sym, unsigned arity) const {
    return tabled.count(pred_key(sym, arity)) != 0;
  }
  bool is_dynamic(std::uint32_t sym, unsigned arity) const {
    return dynamic.count(pred_key(sym, arity)) != 0;
  }

  // Parses `src` (throws AceError on syntax errors). When `include_library`
  // is set, the Prolog-source library (append/member/...) is appended so
  // calls into it are analyzable. Directives (`:- ...`/1) are skipped.
  static AbsProgram from_source(SymbolTable& syms, const std::string& src,
                                bool include_library);
  // Builds the view from a loaded Database (all live clauses).
  static AbsProgram from_database(const SymbolTable& syms,
                                  const Database& db);

  void add_clause(const SymbolTable& syms, TermTemplate tmpl, SourceSpan span,
                  bool from_library);
};

class AbstractInterpreter {
 public:
  // Fired (during report()) for every goal abstractly executed: the clause
  // index, the goal cell, and the abstract state *before* the goal. Control
  // constructs (',', '&', ';', '->', '\+') fire before their subgoals do.
  using GoalObserver =
      std::function<void(std::size_t clause_idx, Cell goal,
                         const AbsState& pre)>;

  // `syms` must outlive the interpreter (non-const: the builtin registry
  // interns its names on construction).
  AbstractInterpreter(const AbsProgram& prog, SymbolTable& syms);

  // Analyzes a call to sym/arity under `pat`; memoized, fixpointed.
  SuccessSummary analyze_call(std::uint32_t sym, unsigned arity,
                              const ArgPattern& pat);

  // Analyzes a query template: executes its body goal under an initial
  // state where every query variable is free and independent. When
  // `out_state` is non-null it receives the abstract exit state of the
  // query's variables (post-fixpoint).
  SuccessSummary analyze_entry(const TermTemplate& query,
                               AbsState* out_state = nullptr);

  // Re-executes every memoized (predicate, pattern) body with `obs`
  // attached. Call after all entries are analyzed (the memo is stable, so
  // the replay observes final fixpoint states).
  void report(const GoalObserver& obs);

  // Ground-on-success under the most general call pattern (sound for any
  // runtime call); used by the static-facts pass.
  bool ground_on_success_top(std::uint32_t sym, unsigned arity);

  // Number of (predicate, call-pattern) summaries computed.
  std::size_t num_summaries() const { return memo_.size(); }

  // Clause index passed to the observer for goals of an entry query (which
  // belongs to no program clause).
  static constexpr std::size_t kEntryClause = static_cast<std::size_t>(-1);

 private:
  using MemoKey = std::pair<PredKey, ArgPattern>;

  // Memoized demand computation (no fixpoint); stabilize() iterates all
  // memo entries to the global fixpoint afterwards.
  SuccessSummary summary_of(std::uint32_t sym, unsigned arity,
                            const ArgPattern& pat);
  void stabilize();
  SuccessSummary compute_call(const MemoKey& key, std::uint32_t sym,
                              unsigned arity);
  // Executes one clause under `pat`; returns the clause's success summary.
  SuccessSummary exec_clause(const AbsProgram::ClauseInfo& ci,
                             std::size_t clause_idx, const ArgPattern& pat);
  // Abstractly executes `goal` in `st`; returns false when the goal
  // definitely cannot succeed (state then undefined).
  bool exec_goal(const AbsProgram::ClauseInfo& ci, std::size_t clause_idx,
                 AbsState& st, Cell goal);
  bool exec_user_call(AbsState& st, const TermTemplate& tmpl, Cell goal,
                      std::uint32_t sym, unsigned arity);
  bool exec_builtin(AbsState& st, const TermTemplate& tmpl, Cell goal,
                    BuiltinId id, const AbsProgram::ClauseInfo& ci,
                    std::size_t clause_idx);
  bool abs_unify(AbsState& st, const TermTemplate& tmpl, Cell a, Cell b);

  // Abstract value of a goal argument subterm in `st`.
  AbsMode term_mode(const AbsState& st, const TermTemplate& tmpl,
                    Cell t) const;
  ArgPattern call_pattern(const AbsState& st, const TermTemplate& tmpl,
                          Cell goal, unsigned arity) const;
  void apply_summary(AbsState& st, const TermTemplate& tmpl, Cell goal,
                     unsigned arity, const SuccessSummary& sum);
  void ground_term(AbsState& st, const TermTemplate& tmpl, Cell t);
  // Conservative: demote every non-ground var of `t`, alias them pairwise,
  // and demote everything they may share with.
  void havoc_term(AbsState& st, const TermTemplate& tmpl, Cell t);

  const AbsProgram& prog_;
  const SymbolTable& syms_;
  Builtins builtins_;
  std::map<MemoKey, SuccessSummary> memo_;
  std::set<MemoKey> in_progress_;
  const GoalObserver* observer_ = nullptr;  // non-null during report()
};

}  // namespace ace
