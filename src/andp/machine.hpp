// AndpMachine: the &ACE-style independent and-parallel engine facade.
//
// DEPRECATED (PR 2): thin wrapper kept for one PR. New code constructs
// ace::Engine with EngineMode::Andp (engine/engine.hpp), which pre-warms
// one session instead of rebuilding stores and workers per solve().
//
// Usage:
//   Database db;
//   load_library(db);
//   db.consult("p(X,Y) :- q(X) & r(Y).");
//   AndpOptions opt;
//   opt.agents = 4;
//   opt.lpco = opt.shallow = opt.pdo = true;
//   AndpMachine m(db, opt);
//   SolveResult r = m.solve("p(A,B).");
//   // r.virtual_time is the simulated 4-agent makespan.
#pragma once

#include "engine/seq_engine.hpp"
#include "engine/worker.hpp"

namespace ace {

struct AndpOptions {
  unsigned agents = 1;
  bool lpco = false;
  bool shallow = false;
  bool pdo = false;
  bool occurs_check = false;
  std::uint64_t resolution_limit = 0;
  // Optional event tracing (see sim/trace.hpp).
  Tracer* tracer = nullptr;
  // Drive with real std::threads instead of the virtual-time simulator.
  // Correctness-identical; virtual_time is still reported but reflects the
  // same cost charges without deterministic interleaving.
  bool use_threads = false;
};

class AndpMachine {
 public:
  explicit AndpMachine(Database& db, AndpOptions opts = {},
                       const CostModel& costs = CostModel::standard());

  SolveResult solve(const std::string& query_text,
                    std::size_t max_solutions = SIZE_MAX);

 private:
  Database& db_;
  AndpOptions opts_;
  CostModel costs_;
  Builtins builtins_;
};

}  // namespace ace
