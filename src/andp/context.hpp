// Shared state of the and-parallel machine: the parcall arena and the
// per-agent work pools.
//
// Work scheduling follows &ACE: an agent pushes the slots of a parcall it
// creates onto its own pool (FIFO, leftmost first — this ordering is what
// gives PDO its "scheduler returns the sequentially next subgoal" hits);
// idle agents first drain their own pool, then steal the oldest entry from
// a peer. An agent that owns an incomplete parcall only takes work from
// that parcall's subtree (descendant parcalls), which keeps every binding
// above its continuation-resume marks undoable — see DESIGN.md §4.
#pragma once

#include <deque>
#include <mutex>
#include <optional>

#include "engine/worker.hpp"
#include "support/chunked_vector.hpp"

namespace ace {

class ParContext {
 public:
  explicit ParContext(unsigned n_agents) : pools_(n_agents) {}

  ~ParContext() { delete_parcalls(); }

  // Clears all per-query state (parcall arena, work pools) so a pooled
  // session can reuse this context for its next query. Must only be called
  // between queries (no agent running).
  void reset() {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    delete_parcalls();
    for (Pool& p : pools_) {
      std::lock_guard<std::mutex> plock(p.mu);
      p.q.clear();
    }
    failing_count.store(0, std::memory_order_relaxed);
  }

  // ---- Parcall arena ----
  // Heap-allocated frames indexed through a stable chunked pointer table:
  // get() is lock-free and safe against a concurrent alloc_parcall() (a
  // std::deque's bookkeeping would race with readers while it grows).
  Parcall& alloc_parcall() {
    Parcall* pf = new Parcall();
    std::lock_guard<std::mutex> lock(alloc_mu_);
    pf->id = static_cast<std::uint32_t>(parcalls_.push_back(pf));
    return *pf;
  }
  Parcall& get(std::uint32_t id) { return *parcalls_[id]; }
  std::size_t num_parcalls() const { return parcalls_.size(); }

  // True if `pf` is `ancestor` or one of its descendants (via creator_pf
  // links).
  bool in_subtree(std::uint32_t pf, std::uint32_t ancestor);

  // ---- Work pools ----
  struct Work {
    std::uint32_t pf;
    std::uint32_t slot;
    std::uint64_t publish_time;
  };

  void publish(unsigned agent, std::uint32_t pf, std::uint32_t slot,
               std::uint64_t time);

  // Takes the oldest valid entry from `agent`'s own pool that `taker` may
  // execute (claims the slot: Pending -> Executing). Entries whose slot is
  // no longer Pending are dropped. Entries published after `taker`'s clock
  // are not yet visible (causality in the virtual-time simulator).
  std::optional<Work> fetch_from(unsigned agent, Worker& taker);

  bool pools_empty() const;

  // Number of parcalls currently in the Failing state; the per-step
  // cancellation poll is O(1) while this is zero.
  std::atomic<std::uint32_t> failing_count{0};

 private:
  bool claim(const Work& w, Worker& taker);

  void delete_parcalls() {
    for (std::size_t i = 0; i < parcalls_.size(); ++i) delete parcalls_[i];
    parcalls_.truncate(0);
  }

  std::mutex alloc_mu_;
  StableChunkList<Parcall*, 20, 6> parcalls_;

  struct Pool {
    mutable std::mutex mu;
    std::deque<Work> q;
  };
  std::vector<Pool> pools_;
};

}  // namespace ace
