// Parcall failure (forward kills) and outside backtracking with
// recomputation — the protocols whose traversal cost LPCO flattens away.
#include "andp/context.hpp"

namespace ace {
namespace {

// The innermost-to-outermost chain of failing ancestors: returns the
// OUTERMOST pf in Failing/Dead state on the creator chain of `pf_id`,
// or kNoPf.
std::uint32_t outermost_failing_ancestor(ParContext& ctx,
                                         std::uint32_t pf_id) {
  std::uint32_t found = kNoPf;
  while (pf_id != kNoPf) {
    PfState st = ctx.get(pf_id).state;
    if (st == PfState::Failing || st == PfState::Dead) found = pf_id;
    pf_id = ctx.get(pf_id).creator_pf;
  }
  return found;
}

}  // namespace

void Worker::unwind_parcall(std::uint32_t pf_id) {
  Parcall& pf = parcall(pf_id);
  if (pf.state == PfState::Dead) return;
  if (pf.state == PfState::Failing) {
    par_->failing_count.fetch_sub(1, std::memory_order_acq_rel);
  }
  pf.state = PfState::Dead;
  charge(CostCat::kParcall, costs_.pf_teardown);
  charge(CostCat::kParcall, costs_.pf_scan_slot * pf.slots.size());
  for (std::uint32_t i = 0; i < pf.slots.size(); ++i) {
    if (pf.slots[i].state == SlotState::Dead) continue;
    unwind_slot(pf_id, i);
    pf.slots[i].state = SlotState::Dead;
  }
}

// ---------------------------------------------------------------------------
// Forward failure: a slot failed during its initial execution. By
// independence the whole parcall fails (paper §2.3 / DESIGN.md §4.2).

void Worker::slot_initial_failure() {
  std::uint32_t pf_id = cur_pf_;
  std::uint32_t slot_idx = cur_slot_;
  Parcall& pf = parcall(pf_id);
  Slot& s = pf.slots[slot_idx];

  ++stats_.slot_failures;
  charge(CostCat::kParcall, costs_.kill_slot);
  trace(TraceEvent::SlotFail, pf_id, slot_idx);

  close_current_part();
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    s.state = SlotState::Aborted;
    if (pf.state == PfState::Forward) {
      pf.state = PfState::Failing;
      par_->failing_count.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  cur_pf_ = kNoPf;
  glist_ = kNoRef;
  bt_ = kNoRef;
  nested_.clear();
  failing_pf_ = pf_id;
  mode_ = Mode::FailWait;
}

bool Worker::subtree_has_executing(std::uint32_t pf_id) {
  for (std::uint32_t id = 0; id < par_->num_parcalls(); ++id) {
    if (!par_->in_subtree(id, pf_id)) continue;
    const Parcall& pf = par_->get(id);
    for (std::uint32_t i = 0; i < pf.slots.size(); ++i) {
      if (pf.slots[i].state == SlotState::Executing) return true;
    }
  }
  return false;
}

void Worker::fail_wait_step() {
  Parcall& pf = parcall(failing_pf_);

  // Subsumed by an outer failure? Then stop coordinating; the outer
  // coordinator's unwind will cover this parcall.
  std::uint32_t outer =
      outermost_failing_ancestor(*par_, pf.creator_pf);
  if (outer != kNoPf) {
    failing_pf_ = kNoPf;
    mode_ = Mode::Idle;
    charge(CostCat::kIdle, costs_.idle_tick);
    return;
  }

  // Wait for every executing slot in the whole failing subtree (nested
  // parcalls included) to acknowledge the kill.
  if (subtree_has_executing(failing_pf_)) {
    ++stats_.idle_ticks;
    charge(CostCat::kIdle, costs_.idle_tick);
    return;
  }
  finish_parcall_failure();
}

void Worker::finish_parcall_failure() {
  std::uint32_t pf_id = failing_pf_;
  failing_pf_ = kNoPf;
  Parcall& pf = parcall(pf_id);

  for (std::uint32_t i = 0; i < pf.slots.size(); ++i) {
    if (pf.slots[i].state == SlotState::Dead) continue;
    unwind_slot(pf_id, i);
    pf.slots[i].state = SlotState::Dead;
    charge(CostCat::kParcall, costs_.kill_slot);
  }
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    ACE_CHECK(pf.state == PfState::Failing);
    pf.state = PfState::Dead;
    par_->failing_count.fetch_sub(1, std::memory_order_acq_rel);
  }

  if (pf.owner == agent_) {
    owner_handle_failed_parcall(pf_id);
  } else {
    mode_ = Mode::Idle;  // the owner notices via its waiting stack
  }
}

void Worker::owner_handle_failed_parcall(std::uint32_t pf_id) {
  Parcall& pf = parcall(pf_id);
  ACE_CHECK(pf.owner == agent_);
  ACE_CHECK(!waiting_pfs_.empty() && waiting_pfs_.back() == pf_id);
  waiting_pfs_.pop_back();
  pending_end_pf_ = kNoPf;

  // Kill our frames above (and including) the parcall frame; the slots'
  // sections were already unwound by the failure coordinator.
  std::uint32_t pf_idx = ref_index(pf.frame);
  std::uint32_t top = static_cast<std::uint32_t>(ctrl_.size());
  for (std::uint32_t i = top; i-- > pf_idx;) {
    mark_frame_dead(*this, i);
  }
  pop_dead_suffix();

  // The parcall as a whole fails: backtrack below it in the creator
  // context.
  cur_pf_ = pf.creator_pf;
  cur_slot_ = pf.creator_slot;
  glist_ = kNoRef;
  bt_ = pf.prev_bt;
  last_done_adjacent_ = false;
  mode_ = Mode::Backtrack;
}

bool Worker::check_cancellation() {
  if (par_->failing_count.load(std::memory_order_acquire) == 0) return false;
  if (cur_pf_ == kNoPf) return false;
  std::uint32_t f = outermost_failing_ancestor(*par_, cur_pf_);
  if (f == kNoPf) return false;

  // Abandon every held context that lies inside the failing subtree:
  // the current slot, then (via the waiting stack) the suspended slots
  // around the parcalls we own.
  charge(CostCat::kParcall, costs_.kill_slot);
  for (;;) {
    if (cur_pf_ != kNoPf) {
      if (!par_->in_subtree(cur_pf_, f)) break;
      Parcall& pf = parcall(cur_pf_);
      Slot& s = pf.slots[cur_slot_];
      {
        std::lock_guard<std::mutex> lock(pf.mu);
        if (s.state == SlotState::Executing) s.state = SlotState::Aborted;
      }
      if (!s.parts.empty() && s.parts.back().open &&
          s.parts.back().agent == agent_) {
        close_current_part();
      }
      cur_pf_ = kNoPf;
      continue;
    }
    if (waiting_pfs_.empty()) break;
    std::uint32_t w = waiting_pfs_.back();
    if (!par_->in_subtree(w, f) || w == f) break;
    // The parcall we own dies with the subtree; resume the abandonment at
    // its creator context (our suspended slot).
    waiting_pfs_.pop_back();
    Parcall& wpf = parcall(w);
    cur_pf_ = wpf.creator_pf;
    cur_slot_ = wpf.creator_slot;
  }
  glist_ = kNoRef;
  bt_ = kNoRef;
  nested_.clear();
  pending_end_pf_ = kNoPf;
  last_done_adjacent_ = false;
  mode_ = Mode::Idle;
  return true;
}

// ---------------------------------------------------------------------------
// Outside backtracking: failure in the continuation re-enters a completed
// parcall (paper §2.1 — the traversal LPCO's flattening makes cheap).

void Worker::undo_continuation(Parcall& pf) {
  Worker& ca = peer(pf.cont_agent);
  std::uint32_t chi;
  std::uint64_t thi;
  bool truncate_own = false;
  if (pf.creator_pf == kNoPf) {
    // Top-level parcall: everything above the resume marks on the
    // coordinator's stacks belongs to the continuation.
    chi = static_cast<std::uint32_t>(ca.ctrl_.size());
    thi = ca.trail_.size();
    truncate_own = &ca == this;
  } else {
    // The continuation region lives inside one part of the enclosing slot.
    Slot& s = parcall(pf.creator_pf).slots[pf.creator_slot];
    ACE_CHECK(pf.cont_part_idx < s.parts.size());
    SectionPart& part = s.parts[pf.cont_part_idx];
    chi = part.open ? static_cast<std::uint32_t>(ca.ctrl_.size())
                    : part.ctrl_hi;
    thi = part.open ? ca.trail_.size() : part.trail_hi;
    // The continuation is removed from the slot's recorded section.
    part.ctrl_hi = pf.cont_ctrl_mark;
    part.trail_hi = pf.cont_trail_mark;
    truncate_own = part.open && &ca == this;
    if (!(&ca == this && part.open)) part.open = false;
  }
  for (std::uint32_t i = chi; i-- > pf.cont_ctrl_mark;) {
    mark_frame_dead(ca, i);
  }
  if (truncate_own) {
    pop_dead_suffix();
    untrail_charge(pf.cont_trail_mark);
  } else {
    std::uint64_t undone = thi > pf.cont_trail_mark
                               ? thi - pf.cont_trail_mark : 0;
    untrail_range(store_, ca.trail_, pf.cont_trail_mark, thi);
    stats_.untrail_ops += undone;
    charge(CostCat::kBacktrack, undone * costs_.untrail_entry);
  }
}

void Worker::parcall_outside_backtrack(std::uint32_t pf_id) {
  Parcall& pf = parcall(pf_id);
  ++stats_.outside_backtracks;
  trace(TraceEvent::OutsideBt, pf_id);
  // Take over coordination of this parcall (the creating agent may be
  // working elsewhere by now).
  pf.owner = agent_;

  // In-flight recomputations (from an earlier re-entry) must stop before
  // we unwind and rescan: put the parcall in Failing state so their
  // executors abort at their next step, then wait for quiescence.
  if (subtree_has_executing(pf_id)) {
    {
      std::lock_guard<std::mutex> lock(pf.mu);
      if (pf.state == PfState::Forward) {
        pf.state = PfState::Failing;
        par_->failing_count.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    reentry_pf_ = pf_id;
    mode_ = Mode::ReentryWait;
    return;
  }
  outside_backtrack_resume(pf_id);
}

void Worker::reentry_wait_step() {
  Parcall& pf = parcall(reentry_pf_);
  // Subsumed by an outer failure: the outer coordinator unwinds this
  // parcall (Failing state included) as part of its teardown.
  std::uint32_t outer = outermost_failing_ancestor(*par_, pf.creator_pf);
  if (outer != kNoPf) {
    reentry_pf_ = kNoPf;
    mode_ = Mode::Idle;
    charge(CostCat::kIdle, costs_.idle_tick);
    return;
  }
  if (subtree_has_executing(reentry_pf_)) {
    ++stats_.idle_ticks;
    charge(CostCat::kIdle, costs_.idle_tick);
    return;
  }
  std::uint32_t pf_id = reentry_pf_;
  reentry_pf_ = kNoPf;
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    ACE_CHECK(pf.state == PfState::Failing);
    pf.state = PfState::Forward;
    par_->failing_count.fetch_sub(1, std::memory_order_acq_rel);
  }
  outside_backtrack_resume(pf_id);
}

void Worker::outside_backtrack_resume(std::uint32_t pf_id) {
  Parcall& pf = parcall(pf_id);
  undo_continuation(pf);

  // Scan slots right-to-left for one with remaining alternatives.
  std::uint32_t target = kNoSlot;
  std::uint32_t it = pf.order_tail;
  while (it != kNoSlot) {
    charge(CostCat::kParcall, costs_.pf_scan_slot);
    Slot& s = pf.slots[it];
    if (s.state == SlotState::Succeeded && s.newest_bt != kNoRef) {
      target = it;
      break;
    }
    it = s.order_prev;
  }

  if (target == kNoSlot) {
    // Parcall exhausted: tear it down and keep backtracking below it.
    unwind_parcall(pf_id);
    mark_frame_dead(peer(ref_agent(pf.frame)), ref_index(pf.frame));
    pop_dead_suffix();
    cur_pf_ = pf.creator_pf;
    cur_slot_ = pf.creator_slot;
    bt_ = pf.prev_bt;
    mode_ = Mode::Backtrack;
    return;
  }

  // Unwind the slots to the right of the target (they will recompute once
  // the target yields a new solution) and account the parcall as pending
  // again.
  std::uint32_t n_right = 0;
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    pf.state = PfState::Forward;
    // Slots right of the target recompute. A slot whose LPCO parent is
    // itself being reset is *deleted*: the parent's re-execution will
    // re-merge and re-create it (its recorded goal references variables of
    // the parent's unwound clause instance).
    std::vector<bool> reset(pf.slots.size(), false);
    std::uint32_t r = pf.slots[target].order_next;
    while (r != kNoSlot) {
      Slot& s = pf.slots[r];
      std::uint32_t next = s.order_next;
      if (s.state == SlotState::Succeeded ||
          s.state == SlotState::Exhausted ||
          s.state == SlotState::Aborted) {
        unwind_slot(pf_id, r);
      }
      reset[r] = true;
      if (s.lpco_parent != kNoSlot && reset[s.lpco_parent]) {
        // Delete from the order list.
        s.state = SlotState::Dead;
        if (s.order_prev != kNoSlot) {
          pf.slots[s.order_prev].order_next = s.order_next;
        } else {
          pf.order_head = s.order_next;
        }
        if (s.order_next != kNoSlot) {
          pf.slots[s.order_next].order_prev = s.order_prev;
        } else {
          pf.order_tail = s.order_prev;
        }
      } else {
        s.state = SlotState::Pending;
        ++n_right;
      }
      r = next;
    }
    pf.pending.store(n_right + 1, std::memory_order_release);
  }
  waiting_pfs_.push_back(pf_id);

  Slot& tslot = pf.slots[target];
  Ref resume_at = tslot.newest_bt;
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    tslot.state = SlotState::Executing;
    tslot.resumed = true;
    tslot.exec_agent = agent_;
  }

  if (frame(resume_at).kind == FrameKind::Choice) {
    // Resume the target slot at its newest choice point. restore_choice()
    // recognizes the cross-section re-entry, switches our context into the
    // slot and opens a new section part here.
    retry_choice_alternative(resume_at);
    return;
  }
  // The slot's newest backtrack point is itself a (nested) parcall: recurse
  // into it. This chain of descents is exactly the repeated traversal that
  // LPCO's flattening eliminates (paper §3.1).
  ACE_CHECK(frame(resume_at).kind == FrameKind::Parcall);
  cur_pf_ = pf_id;
  cur_slot_ = target;
  charge(CostCat::kMarker, costs_.marker_bt);
  parcall_outside_backtrack(frame(resume_at).pf_id);
}

void Worker::slot_resumed_failure() {
  // A slot re-entered by outside backtracking ran out of alternatives:
  // clean its remains and continue the scan to its left — via the parcall
  // re-entry path again.
  std::uint32_t pf_id = cur_pf_;
  std::uint32_t slot_idx = cur_slot_;
  Parcall& pf = parcall(pf_id);
  Slot& s = pf.slots[slot_idx];

  if (!s.parts.empty() && s.parts.back().open &&
      s.parts.back().agent == agent_) {
    close_current_part();
  }
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    s.state = SlotState::Exhausted;
  }
  unwind_slot(pf_id, slot_idx);
  s.state = SlotState::Exhausted;
  cur_pf_ = kNoPf;
  ACE_CHECK(!waiting_pfs_.empty() && waiting_pfs_.back() == pf_id);
  waiting_pfs_.pop_back();
  parcall_outside_backtrack(pf_id);
}

// ---------------------------------------------------------------------------
// Idle scheduling.

void Worker::idle_step() {
  // Cancellation for suspended contexts (we may be waiting inside a dying
  // subtree).
  if (par_->failing_count.load(std::memory_order_acquire) != 0 &&
      !waiting_pfs_.empty()) {
    std::uint32_t w = waiting_pfs_.back();
    std::uint32_t outer = outermost_failing_ancestor(*par_, parcall(w).creator_pf);
    if (outer != kNoPf) {
      // Our suspended slot chain dies. Reuse the running-context logic by
      // adopting the suspended context.
      Parcall& wpf = parcall(w);
      waiting_pfs_.pop_back();
      cur_pf_ = wpf.creator_pf;
      cur_slot_ = wpf.creator_slot;
      if (!check_cancellation()) {
        // Shouldn't happen (ancestor was failing); stay idle regardless.
        cur_pf_ = kNoPf;
        mode_ = Mode::Idle;
      }
      return;
    }
  }

  // 1. Resolve the parcall we are waiting on.
  if (!waiting_pfs_.empty()) {
    std::uint32_t w = waiting_pfs_.back();
    Parcall& pf = parcall(w);
    if (pf.state == PfState::Complete) {
      resume_continuation(w);
      return;
    }
    if (pf.state == PfState::Dead) {
      owner_handle_failed_parcall(w);
      return;
    }
  }

  // 2. Sticky dispatch: continue with the sequentially next subgoal of the
  // parcall whose slot we just finished, if it is still pending — the
  // scheduling behaviour PDO exploits ("the scheduler returns a subgoal
  // which immediately follows the one just completed", paper §4.2).
  if (last_done_adjacent_ && last_done_pf_ != kNoPf) {
    Parcall& pf = parcall(last_done_pf_);
    std::uint32_t next = pf.slots[last_done_slot_].order_next;
    if (next != kNoSlot) {
      bool claimed = false;
      {
        std::lock_guard<std::mutex> lock(pf.mu);
        if (pf.state == PfState::Forward &&
            pf.slots[next].state == SlotState::Pending &&
            (waiting_pfs_.empty() ||
             par_->in_subtree(last_done_pf_, waiting_pfs_.back()))) {
          pf.slots[next].state = SlotState::Executing;
          pf.slots[next].exec_agent = agent_;
          claimed = true;
        }
      }
      if (claimed) {
        start_slot(last_done_pf_, next, /*stolen=*/false);
        return;
      }
    }
  }

  // 3. Own pool, 4. steal.
  unsigned n = static_cast<unsigned>(group_->size());
  for (unsigned k = 0; k < n; ++k) {
    unsigned victim = (agent_ + k) % n;
    if (auto w = par_->fetch_from(victim, *this)) {
      start_slot(w->pf, w->slot, /*stolen=*/victim != agent_);
      return;
    }
  }

  // 4. Nothing to do.
  ++stats_.idle_ticks;
  charge(CostCat::kIdle, costs_.idle_tick);
}

}  // namespace ace
