// The &ACE and-parallel protocol: parcall creation (with LPCO), slot
// lifecycle (with SHALLOW and PDO), parcall completion, forward-failure
// kills, and outside backtracking with recomputation.
#include "andp/context.hpp"

namespace ace {

// ---------------------------------------------------------------------------
// Parcall slot-order list.

std::uint32_t Parcall::append_slot(Slot s) {
  std::uint32_t idx = static_cast<std::uint32_t>(slots.size());
  s.order_prev = order_tail;
  s.order_next = kNoSlot;
  slots.push_back(std::move(s));
  if (order_tail != kNoSlot) slots[order_tail].order_next = idx;
  order_tail = idx;
  if (order_head == kNoSlot) order_head = idx;
  return idx;
}

std::uint32_t Parcall::insert_slot_after(Slot s, std::uint32_t after) {
  std::uint32_t idx = static_cast<std::uint32_t>(slots.size());
  std::uint32_t next = slots[after].order_next;
  s.order_prev = after;
  s.order_next = next;
  slots.push_back(std::move(s));
  slots[after].order_next = idx;
  if (next != kNoSlot) {
    slots[next].order_prev = idx;
  } else {
    order_tail = idx;
  }
  return idx;
}

// ---------------------------------------------------------------------------
// ParContext.

bool ParContext::in_subtree(std::uint32_t pf, std::uint32_t ancestor) {
  while (pf != kNoPf) {
    if (pf == ancestor) return true;
    pf = get(pf).creator_pf;
  }
  return false;
}

void ParContext::publish(unsigned agent, std::uint32_t pf, std::uint32_t slot,
                         std::uint64_t time) {
  Pool& pool = pools_[agent];
  std::lock_guard<std::mutex> lock(pool.mu);
  pool.q.push_back(Work{pf, slot, time});
}

bool ParContext::claim(const Work& w, Worker& taker) {
  Parcall& pf = get(w.pf);
  std::lock_guard<std::mutex> lock(pf.mu);
  if (pf.state != PfState::Forward) return false;
  Slot& s = pf.slots[w.slot];
  if (s.state != SlotState::Pending) return false;
  s.state = SlotState::Executing;
  s.exec_agent = taker.agent_;
  return true;
}

std::optional<ParContext::Work> ParContext::fetch_from(unsigned agent,
                                                       Worker& taker) {
  Pool& pool = pools_[agent];
  for (;;) {
    Work w{};
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      // Find the oldest entry the taker may execute; drop stale entries on
      // the way. (Lock order: pool.mu, then pf.mu inside claim() — never
      // the reverse; publishers collect targets before taking pool.mu.)
      auto it = pool.q.begin();
      bool found = false;
      while (it != pool.q.end()) {
        Parcall& pf = get(it->pf);
        if (pf.state != PfState::Forward ||
            pf.slots[it->slot].state != SlotState::Pending) {
          it = pool.q.erase(it);  // stale
          continue;
        }
        if (it->publish_time > taker.clock_) break;  // not yet visible
        // An agent waiting on a parcall only takes work from that
        // parcall's subtree (keeps its continuation-resume marks undoable;
        // DESIGN.md §4).
        if (!taker.waiting_pfs_.empty() &&
            !in_subtree(it->pf, taker.waiting_pfs_.back())) {
          ++it;
          continue;
        }
        w = *it;
        pool.q.erase(it);
        found = true;
        break;
      }
      if (!found) return std::nullopt;
    }
    if (claim(w, taker)) return w;
    // Lost the race / went stale: scan again.
  }
}

bool ParContext::pools_empty() const {
  for (const Pool& p : pools_) {
    std::lock_guard<std::mutex> lock(p.mu);
    if (!p.q.empty()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Worker: parcall creation.

Parcall& Worker::parcall(std::uint32_t pf_id) { return par_->get(pf_id); }

void Worker::maybe_materialize_input_marker() {
  if (cur_pf_ == kNoPf) return;
  Slot& s = cur_slot_ref();
  if (!s.marker_pending) return;
  s.marker_pending = false;
  Frame f;
  f.kind = FrameKind::InMarker;
  f.pf_id = cur_pf_;
  f.slot_idx = cur_slot_;
  std::uint32_t idx = static_cast<std::uint32_t>(ctrl_.size());
  ctrl_.push_back(f);
  s.in_marker = make_ref(agent_, idx);
  ++stats_.input_markers;
  charge(CostCat::kMarker, costs_.input_marker);
  note_ctrl_alloc(kWordsInputMarker);
}

namespace {

// Flattens the right spine of (a & b & c) into [a, b, c].
void flatten_amp(Store& store, const SymbolTable& syms, Addr goal,
                 std::vector<Addr>& out) {
  Addr a = deref(store, goal);
  Cell c = store.get(a);
  if (c.tag() == Tag::Str) {
    Cell f = store.get(c.ref());
    if (f.fun_symbol() == syms.known().amp && f.fun_arity() == 2) {
      out.push_back(c.ref() + 1);
      flatten_amp(store, syms, c.ref() + 2, out);
      return;
    }
  }
  out.push_back(a);
}

}  // namespace

bool Worker::goal_static_det(Addr goal) {
  if (!opts_.static_facts) return false;
  Addr a = deref(store_, goal);
  Cell c = store_.get(a);
  std::uint32_t sym = 0;
  unsigned arity = 0;
  if (c.tag() == Tag::Atm) {
    sym = c.symbol();
  } else if (c.tag() == Tag::Str) {
    Cell f = store_.get(c.ref());
    sym = f.fun_symbol();
    arity = f.fun_arity();
  } else {
    return false;  // control constructs / variables: no per-predicate fact
  }
  // Lock-free snapshot lookup (this runs per parallel goal on the real-
  // thread fast path); one index view keeps the two fact probes coherent.
  const Predicate* p = snap_.find(sym, arity);
  if (p == nullptr) return false;
  const PredIndex& ix = snap_.view(*p);
  if (ix.fact(StaticFacts::kDet)) return true;  // any call mode
  // The indexed determinacy fact was proven under the premise that the
  // call's first argument is GROUND (plain instantiation is not enough:
  // a partial list still leaves a list-walker's recursive calls free).
  // Groundness is stable — bindings this walk observes cannot be undone
  // by other agents — so a positive answer stays valid for the slot.
  if (!ix.fact(StaticFacts::kDetIndexed)) return false;
  if (arity == 0) return true;
  return term_ground(c.ref() + 1);
}

// Is the term at `at` (an argument cell) fully ground right now?
bool Worker::term_ground(Addr at) {
  Cell c = store_.get(deref(store_, at));
  switch (c.tag()) {
    case Tag::Ref:
      return false;  // unbound variable
    case Tag::Lst:
      return term_ground(c.ref()) && term_ground(c.ref() + 1);
    case Tag::Str: {
      const Cell f = store_.get(c.ref());
      for (unsigned i = 1; i <= f.fun_arity(); ++i) {
        if (!term_ground(c.ref() + i)) return false;
      }
      return true;
    }
    default:
      return true;  // atoms / integers
  }
}

void Worker::begin_parcall(Addr amp_goal, Ref cut_parent) {
  (void)cut_parent;  // cuts are local to parallel subgoals
  std::vector<Addr> subgoals;
  flatten_amp(store_, syms_, amp_goal, subgoals);
  ACE_CHECK(subgoals.size() >= 2);

  if (opts_.lpco) {
    // LPCO's charged test verifies that the slot so far is determinate
    // (conditions (i)+(ii)); with a static determinacy fact on the slot's
    // goal that half is proven at load time and the charge is elided. The
    // remaining pointer comparisons in lpco_try_merge run either way, so
    // control flow is identical with and without facts.
    if (cur_pf_ != kNoPf && cur_slot_ref().static_det) {
      ++stats_.static_elisions;
    } else {
      ++stats_.opt_checks;
      charge(CostCat::kOptCheck, costs_.opt_check);
    }
    if (lpco_try_merge(subgoals)) return;
  }

  // Resolve determinacy facts before slot insertion (outside pf.mu).
  std::vector<char> subgoal_det(subgoals.size(), 0);
  if (opts_.static_facts) {
    for (std::size_t i = 0; i < subgoals.size(); ++i) {
      subgoal_det[i] = goal_static_det(subgoals[i]) ? 1 : 0;
    }
  }

  Parcall& pf = par_->alloc_parcall();
  pf.owner = agent_;
  pf.prev_bt = bt_;
  pf.cont = glist_;
  pf.creator_pf = cur_pf_;
  pf.creator_slot = cur_slot_;
  pf.state = PfState::Forward;

  // The parcall frame goes on the owner's stack.
  Frame f;
  f.kind = FrameKind::Parcall;
  f.pf_id = pf.id;
  f.prev_bt = bt_;
  std::uint32_t idx = static_cast<std::uint32_t>(ctrl_.size());
  ctrl_.push_back(f);
  pf.frame = make_ref(agent_, idx);
  ++stats_.parcall_frames;
  charge(CostCat::kParcall, costs_.parcall_frame);
  note_ctrl_alloc(kWordsParcallFrame);

  for (std::size_t i = 0; i < subgoals.size(); ++i) {
    Slot s;
    s.goal = subgoals[i];
    s.static_det = subgoal_det[i] != 0;
    pf.append_slot(std::move(s));
    ++stats_.parcall_slots;
    charge(CostCat::kParcall, costs_.parcall_slot);
    note_ctrl_alloc(kWordsParcallSlot);
  }
  pf.pending.store(static_cast<std::uint32_t>(subgoals.size()),
                   std::memory_order_release);

  // Publish all but the first; we run the first ourselves.
  for (std::uint32_t i = 1; i < pf.slots.size(); ++i) {
    par_->publish(agent_, pf.id, i, clock_);
  }
  waiting_pfs_.push_back(pf.id);

  // Claim and start slot 0.
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    pf.slots[0].state = SlotState::Executing;
    pf.slots[0].exec_agent = agent_;
  }
  last_done_adjacent_ = false;
  trace(TraceEvent::ParcallCreate, pf.id, pf.slots.size());
  start_slot(pf.id, 0, /*stolen=*/false);
}

bool Worker::lpco_try_merge(const std::vector<Addr>& subgoals) {
  // Paper §3.1 conditions, checked at runtime:
  //   (i)+(ii) the current slot has produced no backtrack points
  //            (goal and everything before the parcall determinate),
  //   (iii)    the parcall is the last goal of the slot,
  // and the enclosing parcall must still be in forward execution.
  if (cur_pf_ == kNoPf) return false;
  if (bt_ != kNoRef || glist_ != kNoRef) return false;
  Slot& cur = cur_slot_ref();
  if (cur.resumed) return false;
  Parcall& pf = parcall(cur_pf_);
  if (pf.state != PfState::Forward) return false;

  ++stats_.lpco_merges;
  trace(TraceEvent::LpcoMerge, cur_pf_, subgoals.size());
  std::vector<char> subgoal_det(subgoals.size(), 0);
  if (opts_.static_facts) {
    for (std::size_t i = 0; i < subgoals.size(); ++i) {
      subgoal_det[i] = goal_static_det(subgoals[i]) ? 1 : 0;
    }
  }
  std::uint32_t first_new = kNoSlot;
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    std::uint32_t after = cur_slot_;
    for (std::size_t gi = 0; gi < subgoals.size(); ++gi) {
      Slot s;
      s.goal = subgoals[gi];
      s.static_det = subgoal_det[gi] != 0;
      s.lpco_parent = cur_slot_;
      after = pf.insert_slot_after(std::move(s), after);
      if (first_new == kNoSlot) first_new = after;
      ++stats_.parcall_slots;
      charge(CostCat::kParcall, costs_.parcall_slot);
      note_ctrl_alloc(kWordsParcallSlot);
    }
    // The current slot completes here (deterministically — no end marker
    // needed; the flattened slots continue the frame). Net pending change:
    // +n for the new slots, -1 for the current slot.
    pf.pending.fetch_add(static_cast<std::uint32_t>(subgoals.size()) - 1,
                         std::memory_order_acq_rel);
  }

  close_current_part();
  Slot& cur2 = cur_slot_ref();
  cur2.newest_bt = kNoRef;
  cur2.state = SlotState::Succeeded;
  cur2.marker_pending = false;
  ++stats_.slot_completions;
  charge(CostCat::kParcall, costs_.slot_complete);

  // Publish all new slots but the first; run the first ourselves.
  std::uint32_t slot_iter = parcall(cur_pf_).slots[first_new].order_next;
  std::uint32_t count = 1;
  while (slot_iter != kNoSlot &&
         count < static_cast<std::uint32_t>(subgoals.size())) {
    par_->publish(agent_, cur_pf_, slot_iter, clock_);
    slot_iter = parcall(cur_pf_).slots[slot_iter].order_next;
    ++count;
  }

  std::uint32_t pf_id = cur_pf_;
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    pf.slots[first_new].state = SlotState::Executing;
    pf.slots[first_new].exec_agent = agent_;
  }
  last_done_pf_ = pf_id;
  last_done_slot_ = cur_slot_;
  last_done_adjacent_ = true;
  cur_pf_ = kNoPf;
  start_slot(pf_id, first_new, /*stolen=*/false);
  return true;
}

// ---------------------------------------------------------------------------
// Slot lifecycle.

void Worker::start_slot(std::uint32_t pf_id, std::uint32_t slot_idx,
                        bool stolen) {
  Parcall& pf = parcall(pf_id);
  Slot& s = pf.slots[slot_idx];
  ACE_CHECK(s.state == SlotState::Executing && s.exec_agent == agent_);
  if (stolen) {
    ++stats_.steals;
    charge(CostCat::kSched, costs_.steal);
    trace(TraceEvent::Steal, pf_id, slot_idx);
  } else {
    ++stats_.fetches;
    charge(CostCat::kSched, costs_.fetch);
  }
  trace(TraceEvent::SlotStart, pf_id, slot_idx);

  // PDO: if this slot is the logical successor of the one we just finished,
  // the two are one contiguous computation — skip the end marker of the
  // previous slot and the input marker of this one.
  bool pdo_merge = false;
  if (opts_.pdo) {
    // PDO's charged test verifies the just-finished slot completed
    // determinately before its markers may be merged away; a static
    // determinacy fact on that slot's goal proves it, eliding the charge.
    // The adjacency comparisons below run either way.
    if (last_done_adjacent_ && last_done_pf_ == pf_id &&
        pf.slots[last_done_slot_].static_det) {
      ++stats_.static_elisions;
    } else {
      ++stats_.opt_checks;
      charge(CostCat::kOptCheck, costs_.opt_check);
    }
    pdo_merge = last_done_adjacent_ && last_done_pf_ == pf_id &&
                s.order_prev == last_done_slot_ &&
                pending_end_pf_ == pf_id &&
                pending_end_slot_ == last_done_slot_;
  }
  resolve_pending_end_marker(pdo_merge);

  cur_pf_ = pf_id;
  cur_slot_ = slot_idx;
  s.resumed = false;
  s.pdo_merged = pdo_merge;
  open_new_part(s);

  if (pdo_merge) {
    ++stats_.pdo_merges;
    trace(TraceEvent::PdoMerge, pf_id, slot_idx);
    s.marker_pending = false;
  } else if (opts_.shallow) {
    // Procrastinate the input marker until a choice point appears. With a
    // static determinacy fact the slot provably never creates one, so the
    // charged applicability test is elided (the marker machinery itself is
    // unchanged: the marker stays pending and is simply never needed).
    if (s.static_det) {
      ++stats_.static_elisions;
    } else {
      ++stats_.opt_checks;
      charge(CostCat::kOptCheck, costs_.opt_check);
    }
    s.marker_pending = true;
  } else {
    s.marker_pending = false;
    Frame f;
    f.kind = FrameKind::InMarker;
    f.pf_id = pf_id;
    f.slot_idx = slot_idx;
    std::uint32_t idx = static_cast<std::uint32_t>(ctrl_.size());
    ctrl_.push_back(f);
    s.in_marker = make_ref(agent_, idx);
    ++stats_.input_markers;
    charge(CostCat::kMarker, costs_.input_marker);
    note_ctrl_alloc(kWordsInputMarker);
  }

  bt_ = kNoRef;
  glist_ = push_goal(s.goal, kNoRef, kNoRef);
  last_done_adjacent_ = false;
  mode_ = Mode::Run;
}

void Worker::resolve_pending_end_marker(bool pdo_merge) {
  if (pending_end_pf_ == kNoPf) return;
  std::uint32_t pf_id = pending_end_pf_;
  std::uint32_t slot_idx = pending_end_slot_;
  pending_end_pf_ = kNoPf;
  Parcall& pf = parcall(pf_id);
  Slot& s = pf.slots[slot_idx];
  if (pdo_merge) return;  // both boundary markers elided (counted as a
                          // pdo_merge by the caller)
  Frame f;
  f.kind = FrameKind::EndMarker;
  f.pf_id = pf_id;
  f.slot_idx = slot_idx;
  std::uint32_t idx = static_cast<std::uint32_t>(ctrl_.size());
  ctrl_.push_back(f);
  s.end_marker = make_ref(agent_, idx);
  ++stats_.end_markers;
  charge(CostCat::kMarker, costs_.end_marker);
  note_ctrl_alloc(kWordsEndMarker);
  // Keep the marker inside the slot's last section part so unwinding
  // reclaims it.
  if (!s.parts.empty()) {
    SectionPart& part = s.parts.back();
    if (!part.open && part.agent == agent_ && part.ctrl_hi == idx) {
      part.ctrl_hi = idx + 1;
    }
  }
}

void Worker::complete_slot() {
  std::uint32_t pf_id = cur_pf_;
  std::uint32_t slot_idx = cur_slot_;
  Parcall& pf = parcall(pf_id);
  Slot& s = pf.slots[slot_idx];

  // SHALLOW resolution (paper §4.1, procrastinated all the way to slot
  // completion): if the slot retains no backtrack points, neither marker
  // is needed — the slot descriptor already records the trail section for
  // later untrailing. If alternatives survive (choice points, or a nested
  // parcall with alternatives), the input marker materializes now.
  if (s.marker_pending) {
    if (bt_ == kNoRef) {
      s.marker_pending = false;
      stats_.shallow_skipped_markers += 2;
      trace(TraceEvent::ShallowSkip, pf_id, slot_idx);
    } else {
      maybe_materialize_input_marker();
    }
  }
  close_current_part();
  s.newest_bt = bt_;
  bool was_resumed = s.resumed;
  if (s.in_marker != kNoRef || s.pdo_merged) {
    // The end marker is procrastinated to the next scheduling decision so
    // PDO can elide it (paper §4.2).
    pending_end_pf_ = pf_id;
    pending_end_slot_ = slot_idx;
  } else if (!opts_.shallow) {
    pending_end_pf_ = pf_id;
    pending_end_slot_ = slot_idx;
  }

  ++stats_.slot_completions;
  charge(CostCat::kParcall, costs_.slot_complete);
  trace(TraceEvent::SlotComplete, pf_id, slot_idx);

  std::vector<std::uint32_t> to_publish;
  {
    std::lock_guard<std::mutex> lock(pf.mu);
    s.state = SlotState::Succeeded;
    std::uint32_t left =
        pf.pending.fetch_sub(1, std::memory_order_acq_rel) - 1;
    if (left == 0) {
      pf.state = PfState::Complete;
    } else if (was_resumed) {
      // Outside backtracking: this slot yielded a new solution — the slots
      // to its right recompute now (paper: recomputation semantics).
      std::uint32_t it = s.order_next;
      while (it != kNoSlot) {
        if (pf.slots[it].state == SlotState::Pending) {
          to_publish.push_back(it);
          ++stats_.recomputations;
        }
        it = pf.slots[it].order_next;
      }
    }
  }
  for (std::uint32_t idx : to_publish) {
    par_->publish(agent_, pf_id, idx, clock_);
  }

  last_done_pf_ = pf_id;
  last_done_slot_ = slot_idx;
  last_done_adjacent_ = true;
  cur_pf_ = kNoPf;
  glist_ = kNoRef;
  bt_ = kNoRef;

  // Sticky dispatch, decided at completion time (before thieves can get
  // between two sequentially adjacent subgoals): continue directly with
  // the next slot of this parcall if it is still pending. This is the
  // scheduler behaviour PDO exploits (paper §4.2).
  std::uint32_t next = pf.slots[slot_idx].order_next;
  if (next != kNoSlot &&
      (waiting_pfs_.empty() ||
       par_->in_subtree(pf_id, waiting_pfs_.back()))) {
    bool claimed = false;
    {
      std::lock_guard<std::mutex> lock(pf.mu);
      if (pf.state == PfState::Forward &&
          pf.slots[next].state == SlotState::Pending) {
        pf.slots[next].state = SlotState::Executing;
        pf.slots[next].exec_agent = agent_;
        claimed = true;
      }
    }
    if (claimed) {
      start_slot(pf_id, next, /*stolen=*/false);
      return;
    }
  }

  mode_ = Mode::Idle;  // the idle step resumes the owner's continuation
}

void Worker::resume_continuation(std::uint32_t pf_id) {
  Parcall& pf = parcall(pf_id);
  ACE_CHECK(pf.owner == agent_);
  ACE_CHECK(!waiting_pfs_.empty() && waiting_pfs_.back() == pf_id);
  waiting_pfs_.pop_back();
  resolve_pending_end_marker(false);

  // The continuation runs inside the enclosing slot; make sure that slot's
  // newest section part is ours (an agent that took over coordination via
  // outside backtracking appends a fresh part here).
  if (pf.creator_pf != kNoPf) {
    Slot& s = parcall(pf.creator_pf).slots[pf.creator_slot];
    if (s.parts.empty() ||
        !(s.parts.back().open && s.parts.back().agent == agent_)) {
      open_new_part(s);
    }
    pf.cont_part_idx = static_cast<std::uint32_t>(s.parts.size()) - 1;
  }
  pf.cont_agent = agent_;
  pf.cont_trail_mark = trail_.size();
  pf.cont_garena_mark = garena_.size();
  pf.cont_heap_mark = heap_size();
  pf.cont_ctrl_mark = static_cast<std::uint32_t>(ctrl_.size());

  cur_pf_ = pf.creator_pf;
  cur_slot_ = pf.creator_slot;
  glist_ = pf.cont;
  // A fully deterministic parcall (no slot kept alternatives) never needs
  // to be re-entered: skip it in the backtrack chain. Otherwise it becomes
  // a backtrack point — and a SHALLOW-procrastinated input marker of the
  // enclosing slot must materialize, exactly as before a choice point.
  bool has_alternatives = false;
  for (std::uint32_t i = 0; i < pf.slots.size(); ++i) {
    const Slot& s = pf.slots[i];
    if (s.state == SlotState::Succeeded && s.newest_bt != kNoRef) {
      has_alternatives = true;
      break;
    }
  }
  if (has_alternatives) {
    bt_ = pf.frame;
  } else {
    bt_ = pf.prev_bt;
  }
  charge(CostCat::kParcall, costs_.slot_complete);
  last_done_adjacent_ = false;
  mode_ = Mode::Run;
}

}  // namespace ace
