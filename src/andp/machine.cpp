#include "andp/machine.hpp"

#include <memory>

#include "andp/context.hpp"
#include "runtime/thread_driver.hpp"
#include "sim/virtual_driver.hpp"

namespace ace {

AndpMachine::AndpMachine(Database& db, AndpOptions opts,
                         const CostModel& costs)
    : db_(db), opts_(opts), costs_(costs), builtins_(db.syms()) {
  ACE_CHECK(opts_.agents >= 1);
}

SolveResult AndpMachine::solve(const std::string& query_text,
                               std::size_t max_solutions) {
  TermTemplate query = parse_term_text(db_.syms(), query_text);

  Store store(opts_.agents);
  IoSink io;
  ParContext par(opts_.agents);

  WorkerOptions wopts;
  wopts.parallel_and = true;
  wopts.lpco = opts_.lpco;
  wopts.shallow = opts_.shallow;
  wopts.pdo = opts_.pdo;
  wopts.occurs_check = opts_.occurs_check;
  wopts.resolution_limit = opts_.resolution_limit;

  std::vector<std::unique_ptr<Worker>> owned;
  std::vector<Worker*> workers;
  owned.reserve(opts_.agents);
  for (unsigned a = 0; a < opts_.agents; ++a) {
    owned.push_back(std::make_unique<Worker>(a, store, db_, builtins_, costs_,
                                             wopts, io));
    workers.push_back(owned.back().get());
  }
  for (Worker* w : workers) {
    w->par_ = &par;
    w->group_ = &workers;
    w->tracer_ = opts_.tracer;
    w->mode_ = Worker::Mode::Idle;
  }
  workers[0]->load_query(query);

  SolveResult result;
  if (opts_.use_threads) {
    ThreadDriver driver;
    driver.run(workers, max_solutions, result.solutions);
  } else {
    VirtualDriver driver;
    while (result.solutions.size() < max_solutions) {
      StepOutcome out = driver.run_until_event(workers);
      if (out == StepOutcome::Solution) {
        result.solutions.push_back(workers[0]->solution_string());
        if (result.solutions.size() >= max_solutions) break;
        workers[0]->request_next_solution();
      } else {
        break;
      }
    }
  }

  result.virtual_time = VirtualDriver::makespan(workers);
  for (Worker* w : workers) {
    result.stats.add(w->stats_);
    result.per_agent.push_back(w->stats_);
    result.agent_clocks.push_back(w->clock_);
  }
  result.output = io.text;
  return result;
}

}  // namespace ace
