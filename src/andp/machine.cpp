#include "andp/machine.hpp"

#include "serve/session.hpp"

namespace ace {

AndpMachine::AndpMachine(Database& db, AndpOptions opts,
                         const CostModel& costs)
    : db_(db), opts_(opts), costs_(costs), builtins_(db.syms()) {
  ACE_CHECK(opts_.agents >= 1);
}

SolveResult AndpMachine::solve(const std::string& query_text,
                               std::size_t max_solutions) {
  // One-shot facade over the reusable serving-layer session (the serving
  // pool keeps sessions alive across queries; here one is built per call).
  // The drive loops live in EngineSession::run_andp.
  EngineConfig cfg;
  cfg.mode = EngineMode::Andp;
  cfg.agents = opts_.agents;
  cfg.lpco = opts_.lpco;
  cfg.shallow = opts_.shallow;
  cfg.pdo = opts_.pdo;
  cfg.occurs_check = opts_.occurs_check;
  cfg.use_threads = opts_.use_threads;
  cfg.resolution_limit = opts_.resolution_limit;
  EngineSession session(db_, builtins_, cfg, costs_);
  session.set_tracer(opts_.tracer);
  QueryBudget budget;
  budget.max_solutions = max_solutions;
  return session.run(query_text, budget);
}

}  // namespace ace
