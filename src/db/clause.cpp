#include "db/clause.hpp"

#include "support/strutil.hpp"

namespace ace {
namespace {

// Returns the pool index of the Fun cell if `c` is a Str cell, else -1.
long fun_index(const Cell& c) {
  return c.tag() == Tag::Str ? static_cast<long>(c.payload()) : -1;
}

IndexKey key_from_cell(const Cell& c) {
  switch (c.tag()) {
    case Tag::VarSlot:
      return {IndexKey::Kind::Var, 0};
    case Tag::Int:
      return {IndexKey::Kind::Int, static_cast<std::uint64_t>(c.integer())};
    case Tag::Atm:
      return {IndexKey::Kind::Atom, c.symbol()};
    case Tag::Lst:
      return {IndexKey::Kind::List, 0};
    case Tag::Str:
      return {IndexKey::Kind::Struct, 0};  // patched by caller with functor
    default:
      return {IndexKey::Kind::Var, 0};
  }
}

}  // namespace

IndexKey clause_index_key(const TermTemplate& tmpl, const SymbolTable& syms) {
  (void)syms;
  long neck = fun_index(tmpl.root);
  ACE_CHECK(neck >= 0);
  const Cell head = tmpl.cells[static_cast<std::size_t>(neck) + 1];
  if (head.tag() == Tag::Atm) return {IndexKey::Kind::Var, 0};  // 0-arity
  long hf = fun_index(head);
  ACE_CHECK(hf >= 0);
  const Cell arg1 = tmpl.cells[static_cast<std::size_t>(hf) + 1];
  IndexKey key = key_from_cell(arg1);
  if (key.kind == IndexKey::Kind::Struct) {
    const Cell f = tmpl.cells[arg1.payload()];
    key.value = f.payload();  // (sym << 12) | arity
  }
  return key;
}

IndexKey call_index_key(const Store& store, Addr first_arg,
                        const SymbolTable& syms) {
  (void)syms;
  Addr a = deref(store, first_arg);
  Cell c = store.get(a);
  switch (c.tag()) {
    case Tag::Ref:
      return {IndexKey::Kind::AnyCall, 0};
    case Tag::Int:
      return {IndexKey::Kind::Int, static_cast<std::uint64_t>(c.integer())};
    case Tag::Atm:
      return {IndexKey::Kind::Atom, c.symbol()};
    case Tag::Lst:
      return {IndexKey::Kind::List, 0};
    case Tag::Str:
      return {IndexKey::Kind::Struct, store.get(c.ref()).payload()};
    default:
      ACE_CHECK_MSG(false, "call_index_key: unexpected tag");
      return {IndexKey::Kind::AnyCall, 0};
  }
}

Clause make_clause(TermTemplate tmpl, SymbolTable& syms) {
  const std::uint32_t neck_sym = syms.known().neck;
  const std::uint32_t true_sym = syms.known().truesym;

  // Normalize: ensure root is ':-'(Head, Body).
  bool is_rule = false;
  if (long p = fun_index(tmpl.root); p >= 0) {
    const Cell f = tmpl.cells[static_cast<std::size_t>(p)];
    is_rule = f.fun_symbol() == neck_sym && f.fun_arity() == 2;
  }
  if (!is_rule) {
    std::uint32_t p = static_cast<std::uint32_t>(tmpl.cells.size());
    tmpl.cells.push_back(fun_cell(neck_sym, 2));
    tmpl.cells.push_back(tmpl.root);
    tmpl.cells.push_back(atm_cell(true_sym));
    tmpl.root = str_cell(p);
  }

  Clause clause;
  long neck = fun_index(tmpl.root);
  const Cell head = tmpl.cells[static_cast<std::size_t>(neck) + 1];
  const Cell body = tmpl.cells[static_cast<std::size_t>(neck) + 2];
  if (head.tag() == Tag::Atm) {
    clause.head_sym = head.symbol();
    clause.head_arity = 0;
  } else if (long hf = fun_index(head); hf >= 0) {
    const Cell f = tmpl.cells[static_cast<std::size_t>(hf)];
    clause.head_sym = f.fun_symbol();
    clause.head_arity = f.fun_arity();
  } else {
    throw AceError("clause head must be an atom or a compound term");
  }
  clause.body_is_true =
      body.tag() == Tag::Atm && body.symbol() == true_sym;
  clause.tmpl = std::move(tmpl);
  clause.key = clause.head_arity == 0
                   ? IndexKey{IndexKey::Kind::Var, 0}
                   : clause_index_key(clause.tmpl, syms);
  return clause;
}

}  // namespace ace
