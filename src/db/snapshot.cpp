#include "db/snapshot.hpp"

#include <chrono>

#include "db/database.hpp"

namespace ace {
namespace db {

namespace {

std::uint64_t pred_key(std::uint32_t sym, unsigned arity) {
  return (std::uint64_t{sym} << 12) | arity;
}

}  // namespace

Snapshot::Snapshot(Snapshot&& o) noexcept
    : db_(o.db_), slot_(o.slot_), epoch_(o.epoch_) {
  o.db_ = nullptr;
  o.slot_ = nullptr;
}

Snapshot& Snapshot::operator=(Snapshot&& o) noexcept {
  if (this != &o) {
    reset();
    db_ = o.db_;
    slot_ = o.slot_;
    epoch_ = o.epoch_;
    o.db_ = nullptr;
    o.slot_ = nullptr;
  }
  return *this;
}

void Snapshot::pin(const Database& d) {
  if (slot_ != nullptr) {
    if (db_ == &d) {
      refresh();
      return;
    }
    reset();
  }
  db_ = &d;
  auto* slot = d.acquire_slot();
  slot_ = slot;
  // Announce with seq_cst on both sides: in the single seq_cst total
  // order, either a reclaiming writer's slot scan observes this store (and
  // keeps everything retired at or after `epoch_` alive), or the scan
  // precedes it — in which case every later load through this snapshot is
  // also after the writer's publication swap and returns the successor
  // version, never the retired one. See docs/database.md.
  epoch_ = d.epoch_.load();
  slot->epoch.store(epoch_);
  // Pin-age stamp for health_stats(). Once per pin (refresh, the per-step
  // hot path, never touches it), after the epoch announce so a nonzero
  // stamp implies the pin is already protective.
  slot->pinned_at_ns.store(mono_ns(), std::memory_order_relaxed);
}

std::uint64_t Snapshot::mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Snapshot::reset() {
  if (slot_ == nullptr) return;
  db_->release_slot(static_cast<Database::EpochSlot*>(slot_));
  slot_ = nullptr;
  db_ = nullptr;
}

void Snapshot::refresh() {
  if (slot_ == nullptr) return;
  // Relaxed probe: a stale read only delays reclamation (the pin never
  // passes through idle, and the announced epoch never exceeds the global
  // one, so protection is continuous). The store stays seq_cst.
  const std::uint64_t e = db_->epoch_.load(std::memory_order_relaxed);
  if (e != epoch_) {
    epoch_ = e;
    static_cast<Database::EpochSlot*>(slot_)->epoch.store(e);
  }
}

const Predicate* Snapshot::find(std::uint32_t sym, unsigned arity) const {
  const Database::Root* r = db_->root_.load();
  auto it = r->ids.find(pred_key(sym, arity));
  return it == r->ids.end() ? nullptr : it->second;
}

std::size_t Snapshot::num_predicates() const {
  return db_->root_.load()->list.size();
}

const Predicate* Snapshot::predicate_at(std::size_t i) const {
  return db_->root_.load()->list[i];
}

}  // namespace db
}  // namespace ace
