#include "db/predicate.hpp"

namespace ace {

std::atomic<std::size_t> PredIndex::s_live_{0};

Predicate::Predicate(std::uint32_t sym, unsigned arity)
    : sym_(sym), arity_(arity) {
  // Every predicate starts from a published empty version so index() is
  // always a valid dereference.
  cur_.store(new PredIndex());
}

Predicate::~Predicate() {
  // Retired versions are owned by the database's limbo list; the handle
  // only owns the final published one.
  delete cur_.load();
}

const PredIndex* PredIndex::make_add(const PredIndex& prev, Clause c,
                                     bool front) {
  auto* next = new PredIndex();
  next->generation_ = prev.generation_ + 1;
  next->clauses_ = prev.clauses_;
  if (front) {
    next->clauses_.insert(next->clauses_.begin(), std::move(c));
  } else {
    next->clauses_.push_back(std::move(c));
  }
  next->rebuild_index();
  return next;
}

const PredIndex* PredIndex::make_retract(const PredIndex& prev,
                                         std::uint32_t ordinal) {
  ACE_CHECK(ordinal < prev.clauses_.size());
  auto* next = new PredIndex();
  next->generation_ = prev.generation_ + 1;
  next->clauses_ = prev.clauses_;
  next->clauses_[ordinal].retracted = true;
  next->rebuild_index();
  return next;
}

void PredIndex::rebuild_index() {
  buckets_.clear();
  var_only_.clear();
  all_.clear();
  for (std::uint32_t i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i].retracted) continue;
    all_.push_back(i);
    if (clauses_[i].key.kind == IndexKey::Kind::Var) {
      var_only_.push_back(i);
      // A var-key clause belongs to every existing bucket...
      for (auto& [key, bucket] : buckets_) bucket.push_back(i);
    } else {
      auto it = buckets_.find(clauses_[i].key);
      if (it == buckets_.end()) {
        // ...and every new bucket starts with the var-key clauses seen so
        // far (they precede this clause in source order).
        it = buckets_.emplace(clauses_[i].key, var_only_).first;
      }
      it->second.push_back(i);
    }
  }
}

long PredIndex::next_matching_from(const IndexKey& call, long after) const {
  for (std::size_t i = static_cast<std::size_t>(after + 1);
       i < clauses_.size(); ++i) {
    if (clauses_[i].retracted) continue;
    if (clauses_[i].key.matches_call(call)) return static_cast<long>(i);
  }
  return -1;
}

}  // namespace ace
