#include "db/predicate.hpp"

namespace ace {

void Predicate::add_clause(Clause c, bool front) {
  ACE_CHECK(c.head_sym == sym_ && c.head_arity == arity_);
  if (front) {
    clauses_.insert(clauses_.begin(), std::move(c));
  } else {
    clauses_.push_back(std::move(c));
  }
  ++generation_;
  static_facts_.store(0, std::memory_order_relaxed);  // facts are stale
  rebuild_index();
}

void Predicate::retract_clause(std::uint32_t ordinal) {
  ACE_CHECK(ordinal < clauses_.size());
  clauses_[ordinal].retracted = true;
  ++generation_;
  static_facts_.store(0, std::memory_order_relaxed);  // facts are stale
  rebuild_index();
}

void Predicate::rebuild_index() {
  buckets_.clear();
  var_only_.clear();
  all_.clear();
  for (std::uint32_t i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i].retracted) continue;
    all_.push_back(i);
    if (clauses_[i].key.kind == IndexKey::Kind::Var) {
      var_only_.push_back(i);
      // A var-key clause belongs to every existing bucket...
      for (auto& [key, bucket] : buckets_) bucket.push_back(i);
    } else {
      auto it = buckets_.find(clauses_[i].key);
      if (it == buckets_.end()) {
        // ...and every new bucket starts with the var-key clauses seen so
        // far (they precede this clause in source order).
        it = buckets_.emplace(clauses_[i].key, var_only_).first;
      }
      it->second.push_back(i);
    }
  }
}

const std::vector<std::uint32_t>& Predicate::candidates(
    const IndexKey& call) const {
  if (call.kind == IndexKey::Kind::AnyCall) return all_;
  auto it = buckets_.find(call);
  return it != buckets_.end() ? it->second : var_only_;
}

long Predicate::next_matching_from(const IndexKey& call, long after) const {
  for (std::size_t i = static_cast<std::size_t>(after + 1);
       i < clauses_.size(); ++i) {
    if (clauses_[i].retracted) continue;
    if (clauses_[i].key.matches_call(call)) return static_cast<long>(i);
  }
  return -1;
}

}  // namespace ace
