// Predicates as epoch-published immutable index versions.
//
// A Predicate is a *stable handle*: it lives as long as its Database and
// only carries the predicate's identity (symbol/arity), its dynamic/tabled
// declarations, and an atomic pointer to the current PredIndex. A PredIndex
// is one *immutable published version* of the clause list plus the eagerly
// built first-argument index buckets. Writers never mutate a published
// version: assert/retract build a successor version off-line and install it
// with one atomic pointer swap; the retired version goes onto the
// database's epoch limbo list and is freed once every pinned db::Snapshot
// has moved past it (see db/snapshot.hpp and docs/database.md).
//
// Readers therefore never block and never observe a half-built index: any
// PredIndex reference obtained while a snapshot is pinned is complete,
// internally consistent, and stays valid until the snapshot is refreshed
// or released.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/clause.hpp"

namespace ace {

class Database;

// Load-time analysis facts attached to a predicate version (see
// analysis/static_facts.hpp). Engines consult them — when enabled — to skip
// the charged runtime applicability checks of the LPCO/SHALLOW/PDO/LAO
// optimization schemas; a fact only ever *elides a check*, never changes
// control flow, so solutions are identical with and without facts.
struct StaticFacts {
  // Bit layout of the packed word (bit set = property proven).
  static constexpr std::uint32_t kValid = 1u << 0;     // facts were computed
  static constexpr std::uint32_t kDet = 1u << 1;       // determinate for ANY
                                                       // call mode
  static constexpr std::uint32_t kNoChoice = 1u << 2;  // <= 1 clause match
  static constexpr std::uint32_t kLaoChain = 1u << 3;  // LAO generator shape
  static constexpr std::uint32_t kGroundOnSuccess = 1u << 4;
  // Determinate only for calls whose first argument dereferences to a
  // non-variable (first-argument indexing then selects at most one
  // clause). Consumers MUST verify that per call before relying on it;
  // kDet implies kDetIndexed.
  static constexpr std::uint32_t kDetIndexed = 1u << 5;
};

// One immutable published version of a predicate's clause list and
// first-argument index. Everything except the StaticFacts word is frozen
// before publication; the facts word is a monotone analysis *hint* that the
// static-facts pass stores into the current version after the fact (a new
// version starts at 0, which is exactly the "mutation invalidates facts"
// rule — and only for the mutated predicate).
class PredIndex {
 public:
  PredIndex(const PredIndex&) = delete;
  PredIndex& operator=(const PredIndex&) = delete;
  ~PredIndex() { s_live_.fetch_sub(1, std::memory_order_relaxed); }

  // Version counter: strictly increasing per predicate, bumped by every
  // assert/retract. Choice points and tables record it and compare for
  // equality to detect that the clause set changed under them.
  std::uint64_t generation() const { return generation_; }

  std::size_t num_clauses() const { return clauses_.size(); }
  const Clause& clause(std::uint32_t ordinal) const {
    return clauses_[ordinal];
  }

  // Ordinals of live clauses whose key can match `call`, in source order.
  // The returned reference lives as long as this version.
  const std::vector<std::uint32_t>& candidates(const IndexKey& call) const {
    if (call.kind == IndexKey::Kind::AnyCall) return all_;
    auto it = buckets_.find(call);
    return it != buckets_.end() ? it->second : var_only_;
  }

  // Index-free fallback: the first live matching ordinal > `after`
  // (pass -1 to start from the beginning), or -1 if none.
  long next_matching_from(const IndexKey& call, long after) const;

  // Packed StaticFacts bits (relaxed atomics: facts are a monotone hint —
  // readers either see valid analysis results or zero; a fresh version
  // always starts at zero, so a mutation implicitly and precisely
  // invalidates the mutated predicate's facts and nobody else's).
  std::uint32_t static_facts() const {
    return static_facts_.load(std::memory_order_relaxed);
  }
  bool fact(std::uint32_t bit) const {
    const std::uint32_t f = static_facts();
    return (f & StaticFacts::kValid) != 0 && (f & bit) != 0;
  }

  // Number of PredIndex versions currently alive in the process. Tests use
  // deltas of this to prove that epoch reclamation actually frees retired
  // versions (satellite: epoch-reclamation coverage).
  static std::size_t live_count() {
    return s_live_.load(std::memory_order_relaxed);
  }

 private:
  friend class Database;
  friend class Predicate;

  PredIndex() { s_live_.fetch_add(1, std::memory_order_relaxed); }

  // Writer-side successor construction (called under the database writer
  // lock; `prev` is the currently published version).
  static const PredIndex* make_add(const PredIndex& prev, Clause c,
                                   bool front);
  static const PredIndex* make_retract(const PredIndex& prev,
                                       std::uint32_t ordinal);
  void rebuild_index();

  // The static-facts pass stores into the *current* version. Callers must
  // hold the database writer lock (or be single-threaded w.r.t. writers)
  // so the version cannot be retired and freed mid-store.
  void set_static_facts(std::uint32_t bits) const {
    static_facts_.store(bits, std::memory_order_relaxed);
  }

  std::uint64_t generation_ = 0;
  mutable std::atomic<std::uint32_t> static_facts_{0};
  std::vector<Clause> clauses_;
  // Buckets for every key that appears on some clause (each merged with the
  // var-key clauses, in ordinal order), plus the var-only and all-clause
  // lists for calls whose key matches nothing / everything.
  std::unordered_map<IndexKey, std::vector<std::uint32_t>, IndexKeyHash>
      buckets_;
  std::vector<std::uint32_t> var_only_;
  std::vector<std::uint32_t> all_;

  static std::atomic<std::size_t> s_live_;
};

// The stable per-predicate handle. Never freed while its Database lives, so
// engine frames, shared or-tree nodes and table dependencies may hold a
// `const Predicate*` across steps, queries and threads without any pin; only
// dereferencing index() requires a pinned db::Snapshot (or quiescence —
// single-threaded tools that never race a writer need no pin).
class Predicate {
 public:
  Predicate(std::uint32_t sym, unsigned arity);
  ~Predicate();
  Predicate(const Predicate&) = delete;
  Predicate& operator=(const Predicate&) = delete;

  std::uint32_t sym() const { return sym_; }
  unsigned arity() const { return arity_; }
  bool is_dynamic() const { return dynamic_.load(std::memory_order_relaxed); }
  void set_dynamic() { dynamic_.store(true, std::memory_order_relaxed); }
  // Declared `:- table name/arity.` — calls run under SLG tabling.
  bool is_tabled() const { return tabled_.load(std::memory_order_relaxed); }
  void set_tabled() { tabled_.store(true, std::memory_order_relaxed); }

  // The currently published index version. The caller must hold a pinned
  // db::Snapshot on the owning database (or be quiescent w.r.t. writers);
  // the reference stays valid until that snapshot refreshes or releases.
  //
  // Scoped operations that need one *consistent* view (generation check +
  // candidates + clause access) must load index() once and use the
  // reference throughout — two separate loads may straddle a publication.
  const PredIndex& index() const { return *cur_.load(); }

  // Single-load convenience passthroughs for point queries.
  std::uint64_t generation() const { return index().generation(); }
  std::size_t num_clauses() const { return index().num_clauses(); }
  const Clause& clause(std::uint32_t ordinal) const {
    return index().clause(ordinal);
  }
  const std::vector<std::uint32_t>& candidates(const IndexKey& call) const {
    return index().candidates(call);
  }
  long next_matching_from(const IndexKey& call, long after) const {
    return index().next_matching_from(call, after);
  }
  std::uint32_t static_facts() const { return index().static_facts(); }
  bool fact(std::uint32_t bit) const { return index().fact(bit); }
  // Stores analysis facts into the current version (writer-lock or
  // quiescence required; see PredIndex::set_static_facts).
  void set_static_facts(std::uint32_t bits) { index().set_static_facts(bits); }

 private:
  friend class Database;

  // Writer side (under the database writer lock): publishes `next` with one
  // atomic swap and returns the retired version for epoch limbo.
  const PredIndex* install(const PredIndex* next) {
    return cur_.exchange(next);
  }

  std::uint32_t sym_;
  unsigned arity_;
  std::atomic<bool> dynamic_{false};
  std::atomic<bool> tabled_{false};
  // seq_cst on purpose: the epoch-reclamation safety argument (see
  // docs/database.md) relies on the swap, the reader's pin store and the
  // writer's slot scan all participating in the single seq_cst total order.
  std::atomic<const PredIndex*> cur_;
};

}  // namespace ace
