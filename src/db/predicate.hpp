// Predicates: clause lists with eagerly maintained first-argument index
// buckets. Buckets are rebuilt on every mutation so candidate lookups are
// strictly read-only (safe under the Database's shared lock).
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/clause.hpp"

namespace ace {

// Load-time analysis facts attached to a predicate (see
// analysis/static_facts.hpp). Engines consult them — when enabled — to skip
// the charged runtime applicability checks of the LPCO/SHALLOW/PDO/LAO
// optimization schemas; a fact only ever *elides a check*, never changes
// control flow, so solutions are identical with and without facts.
struct StaticFacts {
  // Bit layout of the packed word (bit set = property proven).
  static constexpr std::uint32_t kValid = 1u << 0;     // facts were computed
  static constexpr std::uint32_t kDet = 1u << 1;       // determinate for ANY
                                                       // call mode
  static constexpr std::uint32_t kNoChoice = 1u << 2;  // <= 1 clause match
  static constexpr std::uint32_t kLaoChain = 1u << 3;  // LAO generator shape
  static constexpr std::uint32_t kGroundOnSuccess = 1u << 4;
  // Determinate only for calls whose first argument dereferences to a
  // non-variable (first-argument indexing then selects at most one
  // clause). Consumers MUST verify that per call before relying on it;
  // kDet implies kDetIndexed.
  static constexpr std::uint32_t kDetIndexed = 1u << 5;
};

class Predicate {
 public:
  Predicate(std::uint32_t sym, unsigned arity) : sym_(sym), arity_(arity) {}

  std::uint32_t sym() const { return sym_; }
  unsigned arity() const { return arity_; }
  bool is_dynamic() const { return dynamic_; }
  void set_dynamic() { dynamic_ = true; }
  // Declared `:- table name/arity.` — calls run under SLG tabling.
  bool is_tabled() const { return tabled_; }
  void set_tabled() { tabled_ = true; }
  std::uint64_t generation() const { return generation_; }

  std::size_t num_clauses() const { return clauses_.size(); }
  const Clause& clause(std::uint32_t ordinal) const {
    return clauses_[ordinal];
  }

  void add_clause(Clause c, bool front);
  void retract_clause(std::uint32_t ordinal);

  // Packed StaticFacts bits (relaxed atomics: facts are a monotone hint —
  // readers either see valid analysis results or zero, and any mutation
  // clears them before the clause list changes becomes visible under the
  // Database lock).
  std::uint32_t static_facts() const {
    return static_facts_.load(std::memory_order_relaxed);
  }
  void set_static_facts(std::uint32_t bits) {
    static_facts_.store(bits, std::memory_order_relaxed);
  }
  bool fact(std::uint32_t bit) const {
    const std::uint32_t f = static_facts();
    return (f & StaticFacts::kValid) != 0 && (f & bit) != 0;
  }

  // Ordinals of live clauses whose key can match `call`, in source order.
  // Read-only: valid until the next mutation (generation bump); engine
  // choice points detect generation changes and fall back to
  // next_matching_from().
  const std::vector<std::uint32_t>& candidates(const IndexKey& call) const;

  // Index-free fallback: the first live matching ordinal > `after`
  // (pass -1 to start from the beginning), or -1 if none.
  long next_matching_from(const IndexKey& call, long after) const;

 private:
  void rebuild_index();

  std::uint32_t sym_;
  unsigned arity_;
  bool dynamic_ = false;
  bool tabled_ = false;
  std::uint64_t generation_ = 0;
  std::atomic<std::uint32_t> static_facts_{0};
  std::vector<Clause> clauses_;
  // Buckets for every key that appears on some clause (each merged with the
  // var-key clauses, in ordinal order), plus the var-only and all-clause
  // lists for calls whose key matches nothing / everything.
  std::unordered_map<IndexKey, std::vector<std::uint32_t>, IndexKeyHash>
      buckets_;
  std::vector<std::uint32_t> var_only_;
  std::vector<std::uint32_t> all_;
};

}  // namespace ace
