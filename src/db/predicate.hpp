// Predicates: clause lists with eagerly maintained first-argument index
// buckets. Buckets are rebuilt on every mutation so candidate lookups are
// strictly read-only (safe under the Database's shared lock).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/clause.hpp"

namespace ace {

class Predicate {
 public:
  Predicate(std::uint32_t sym, unsigned arity) : sym_(sym), arity_(arity) {}

  std::uint32_t sym() const { return sym_; }
  unsigned arity() const { return arity_; }
  bool is_dynamic() const { return dynamic_; }
  void set_dynamic() { dynamic_ = true; }
  std::uint64_t generation() const { return generation_; }

  std::size_t num_clauses() const { return clauses_.size(); }
  const Clause& clause(std::uint32_t ordinal) const {
    return clauses_[ordinal];
  }

  void add_clause(Clause c, bool front);
  void retract_clause(std::uint32_t ordinal);

  // Ordinals of live clauses whose key can match `call`, in source order.
  // Read-only: valid until the next mutation (generation bump); engine
  // choice points detect generation changes and fall back to
  // next_matching_from().
  const std::vector<std::uint32_t>& candidates(const IndexKey& call) const;

  // Index-free fallback: the first live matching ordinal > `after`
  // (pass -1 to start from the beginning), or -1 if none.
  long next_matching_from(const IndexKey& call, long after) const;

 private:
  void rebuild_index();

  std::uint32_t sym_;
  unsigned arity_;
  bool dynamic_ = false;
  std::uint64_t generation_ = 0;
  std::vector<Clause> clauses_;
  // Buckets for every key that appears on some clause (each merged with the
  // var-key clauses, in ordinal order), plus the var-only and all-clause
  // lists for calls whose key matches nothing / everything.
  std::unordered_map<IndexKey, std::vector<std::uint32_t>, IndexKeyHash>
      buckets_;
  std::vector<std::uint32_t> var_only_;
  std::vector<std::uint32_t> all_;
};

}  // namespace ace
