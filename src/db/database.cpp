#include "db/database.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/strutil.hpp"

namespace ace {
namespace {

std::uint64_t pred_key(std::uint32_t sym, unsigned arity) {
  return (std::uint64_t{sym} << 12) | arity;
}

#ifndef NDEBUG
// One entry per database this thread currently guards. In practice a
// thread guards at most one database, but tests construct several; the
// registry is a tiny linear scan either way.
struct GuardEntry {
  const Database* db;
  int depth;
};
thread_local std::vector<GuardEntry> t_guards;
#endif

}  // namespace

#ifndef NDEBUG
void Database::debug_note_guard(int delta) const {
  for (auto it = t_guards.begin(); it != t_guards.end(); ++it) {
    if (it->db == this) {
      it->depth += delta;
      if (it->depth <= 0) t_guards.erase(it);
      return;
    }
  }
  if (delta > 0) t_guards.push_back(GuardEntry{this, delta});
}

void Database::debug_assert_unguarded(const char* fn) const {
  for (const GuardEntry& e : t_guards) {
    if (e.db == this && e.depth > 0) {
      std::fprintf(
          stderr,
          "Database::%s called while this thread holds a read_guard()/"
          "write_guard() on the same database; shared_mutex is not "
          "recursive, so this would deadlock in a release build. Use the "
          "*_nolock accessors inside guard scopes.\n",
          fn);
      std::abort();
    }
  }
}
#endif

Database::Database() = default;

const Predicate* Database::find_locked(std::uint32_t sym,
                                       unsigned arity) const {
  auto it = pred_ids_.find(pred_key(sym, arity));
  if (it == pred_ids_.end()) return nullptr;
  return preds_[it->second].get();
}

const Predicate* Database::find(std::uint32_t sym, unsigned arity) const {
  debug_assert_unguarded("find");
  std::shared_lock<std::shared_mutex> lock(mu_);
  return find_locked(sym, arity);
}

Predicate* Database::find_mutable(std::uint32_t sym, unsigned arity) {
  debug_assert_unguarded("find_mutable");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = pred_ids_.find(pred_key(sym, arity));
  if (it == pred_ids_.end()) return nullptr;
  return preds_[it->second].get();
}

Predicate& Database::get_or_create(std::uint32_t sym, unsigned arity) {
  debug_assert_unguarded("get_or_create");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = pred_ids_.emplace(
      pred_key(sym, arity), static_cast<std::uint32_t>(preds_.size()));
  if (inserted) {
    preds_.push_back(std::make_unique<Predicate>(sym, arity));
  }
  return *preds_[it->second];
}

void Database::add_clause(TermTemplate tmpl, bool front) {
  debug_assert_unguarded("add_clause");
  auto lock = write_guard();
  add_clause_nolock(std::move(tmpl), front);
}

void Database::add_clause_nolock(TermTemplate tmpl, bool front) {
  Clause clause = make_clause(std::move(tmpl), syms_);
  std::uint32_t sym = clause.head_sym;
  unsigned arity = clause.head_arity;
  auto [it, inserted] = pred_ids_.emplace(
      pred_key(sym, arity), static_cast<std::uint32_t>(preds_.size()));
  if (inserted) {
    preds_.push_back(std::make_unique<Predicate>(sym, arity));
  }
  preds_[it->second]->add_clause(std::move(clause), front);
  note_change_nolock(sym, arity);
}

void Database::set_dynamic(std::uint32_t sym, unsigned arity) {
  get_or_create(sym, arity).set_dynamic();
}

void Database::set_tabled(std::uint32_t sym, unsigned arity) {
  get_or_create(sym, arity).set_tabled();
  has_tabled_.store(true, std::memory_order_relaxed);
}

std::uint64_t Database::add_change_hook(ChangeHook hook) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  const std::uint64_t id = next_hook_id_++;
  hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Database::remove_change_hook(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->first == id) {
      hooks_.erase(it);
      return;
    }
  }
}

void Database::note_change_nolock(std::uint32_t sym, unsigned arity) const {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  for (const auto& [id, hook] : hooks_) hook(sym, arity);
}

std::size_t Database::num_predicates() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return preds_.size();
}

void Database::handle_directive(const TermTemplate& tmpl) {
  // Directive root: ':-'(Goal). Recognize dynamic/1 and table/1 with a
  // (possibly comma-separated) list of name/arity specs; ignore everything
  // else.
  const Cell goal = tmpl.cells[tmpl.root.payload() + 1];
  if (goal.tag() != Tag::Str) return;
  const Cell f = tmpl.cells[goal.payload()];
  if (f.fun_arity() != 1) return;
  const std::string& fname = syms_.name(f.fun_symbol());
  const bool tabled = fname == "table";
  if (!tabled && fname != "dynamic") return;
  const char* err = tabled ? "malformed table/1 directive"
                           : "malformed dynamic/1 directive";

  std::vector<Cell> work{tmpl.cells[goal.payload() + 1]};
  const std::uint32_t comma = syms_.known().comma;
  while (!work.empty()) {
    Cell spec = work.back();
    work.pop_back();
    if (spec.tag() != Tag::Str) throw AceError(err);
    const Cell sf = tmpl.cells[spec.payload()];
    if (sf.fun_symbol() == comma && sf.fun_arity() == 2) {
      work.push_back(tmpl.cells[spec.payload() + 1]);
      work.push_back(tmpl.cells[spec.payload() + 2]);
      continue;
    }
    if (syms_.name(sf.fun_symbol()) == "/" && sf.fun_arity() == 2) {
      const Cell name = tmpl.cells[spec.payload() + 1];
      const Cell arity = tmpl.cells[spec.payload() + 2];
      if (name.tag() == Tag::Atm && arity.tag() == Tag::Int) {
        if (tabled) {
          set_tabled(name.symbol(), static_cast<unsigned>(arity.integer()));
        } else {
          set_dynamic(name.symbol(), static_cast<unsigned>(arity.integer()));
        }
        continue;
      }
    }
    throw AceError(err);
  }
}

void Database::consult(const std::string& src) {
  std::vector<TermTemplate> clauses = parse_program(syms_, src);
  const std::uint32_t neck = syms_.known().neck;
  for (TermTemplate& tmpl : clauses) {
    // A directive is ':-'(Goal) — the prefix operator parse.
    if (tmpl.root.tag() == Tag::Str) {
      const Cell f = tmpl.cells[tmpl.root.payload()];
      if (f.fun_symbol() == neck && f.fun_arity() == 1) {
        handle_directive(tmpl);
        continue;
      }
    }
    add_clause(std::move(tmpl));
  }
}

}  // namespace ace
