#include "db/database.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "db/snapshot.hpp"
#include "support/strutil.hpp"
#include "tab/dep.hpp"

namespace ace {
namespace {

std::uint64_t pred_key(std::uint32_t sym, unsigned arity) {
  return (std::uint64_t{sym} << 12) | arity;
}

void delete_index(const void* p) {
  delete static_cast<const PredIndex*>(p);
}

// Databases this thread is currently draining change hooks for: a hook
// that mutates the same database queues new events and returns here
// immediately — the outer drain loop picks them up (re-entrancy guard).
thread_local std::vector<const Database*> t_draining;

}  // namespace

void Database::retire_locked(const void* p, void (*del)(const void*)) {
  if (p == nullptr) return;
  limbo_.push_back(
      Limbo{p, del, epoch_.load(std::memory_order_relaxed)});
}

void Database::bump_and_reclaim_locked() {
  // Publication order matters for the reclamation proof: the pointer swap
  // happened-before this bump, so any reader pinned at an epoch > the
  // retire tag is guaranteed (in the seq_cst total order) to load the
  // successor version, never the retired one.
  epoch_.fetch_add(1);
  const std::uint64_t min = min_pinned_epoch();
  std::size_t kept = 0;
  for (Limbo& l : limbo_) {
    if (l.epoch < min) {
      l.del(l.p);
    } else {
      limbo_[kept++] = l;
    }
  }
  limbo_.resize(kept);
}

std::uint64_t Database::min_pinned_epoch() const {
  std::uint64_t min = epoch_.load();
  std::lock_guard<std::mutex> lock(slots_mu_);
  for (const auto& s : slots_) {
    const std::uint64_t e = s->epoch.load();
    if (e < min) min = e;
  }
  return min;
}

Database::EpochSlot* Database::acquire_slot() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  for (const auto& s : slots_) {
    if (!s->in_use) {
      s->in_use = true;
      return s.get();
    }
  }
  slots_.push_back(std::make_unique<EpochSlot>());
  slots_.back()->in_use = true;
  return slots_.back().get();
}

void Database::release_slot(EpochSlot* slot) const {
  slot->epoch.store(kIdleEpoch);
  slot->pinned_at_ns.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(slots_mu_);
  slot->in_use = false;
}

Database::HealthStats Database::health_stats() const {
  HealthStats h;
  h.epoch = epoch_.load();
  h.min_pinned_epoch = min_pinned_epoch();
  h.epoch_lag = h.epoch - h.min_pinned_epoch;
  h.limbo_depth = limbo_size();
  h.index_versions = PredIndex::live_count();
  const std::uint64_t now = db::Snapshot::mono_ns();
  std::uint64_t oldest = 0;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    for (const auto& s : slots_) {
      if (s->epoch.load() == kIdleEpoch) continue;
      ++h.pinned_snapshots;
      const std::uint64_t at = s->pinned_at_ns.load(std::memory_order_relaxed);
      // at == 0: the pin is published but its stamp is not yet visible (or
      // was cleared by a racing release); skip rather than report a bogus
      // full-clock age.
      if (at != 0 && now > at) oldest = std::max(oldest, now - at);
    }
  }
  h.oldest_pin_age_ns = oldest;
  std::uint64_t hw = pin_age_hw_ns_.load(std::memory_order_relaxed);
  while (hw < oldest && !pin_age_hw_ns_.compare_exchange_weak(
                            hw, oldest, std::memory_order_relaxed)) {
  }
  h.pin_age_hw_ns = std::max(hw, oldest);
  return h;
}

std::size_t Database::limbo_size() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return limbo_.size();
}

Database::Database() : root_(new Root()) {}

Database::~Database() {
#ifndef NDEBUG
  for (const auto& s : slots_) {
    if (s->epoch.load() != kIdleEpoch) {
      std::fprintf(stderr,
                   "~Database: a db::Snapshot is still pinned; snapshots "
                   "must not outlive their database.\n");
      std::abort();
    }
  }
#endif
  for (Limbo& l : limbo_) l.del(l.p);
  delete root_.load();
  // owned_ predicates free their final published version in ~Predicate.
}

const Predicate* Database::find(std::uint32_t sym, unsigned arity) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const Root* r = root_.load(std::memory_order_relaxed);
  auto it = r->ids.find(pred_key(sym, arity));
  return it == r->ids.end() ? nullptr : it->second;
}

std::uint64_t Database::pred_generation(std::uint32_t sym,
                                        unsigned arity) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const Root* r = root_.load(std::memory_order_relaxed);
  auto it = r->ids.find(pred_key(sym, arity));
  // Reading the published index is safe here: retire and free only ever
  // happen under writer_mu_, which we hold.
  return it == r->ids.end() ? tab::kDepUndefined
                            : it->second->index().generation();
}

Predicate* Database::find_mutable(std::uint32_t sym, unsigned arity) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const Root* r = root_.load(std::memory_order_relaxed);
  auto it = r->ids.find(pred_key(sym, arity));
  return it == r->ids.end() ? nullptr : it->second;
}

Predicate& Database::get_or_create_locked(std::uint32_t sym, unsigned arity) {
  const Root* cur = root_.load(std::memory_order_relaxed);
  auto it = cur->ids.find(pred_key(sym, arity));
  if (it != cur->ids.end()) return *it->second;
  owned_.push_back(std::make_unique<Predicate>(sym, arity));
  Predicate* p = owned_.back().get();
  auto* next = new Root(*cur);
  next->ids.emplace(pred_key(sym, arity), p);
  next->list.push_back(p);
  const Root* old = root_.exchange(next);
  retire_locked(old,
                [](const void* q) { delete static_cast<const Root*>(q); });
  bump_and_reclaim_locked();
  return *p;
}

Predicate& Database::get_or_create(std::uint32_t sym, unsigned arity) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return get_or_create_locked(sym, arity);
}

void Database::add_clause_locked(TermTemplate tmpl, bool front) {
  Clause clause = make_clause(std::move(tmpl), syms_);
  const std::uint32_t sym = clause.head_sym;
  const unsigned arity = clause.head_arity;
  Predicate& p = get_or_create_locked(sym, arity);
  const PredIndex* next =
      PredIndex::make_add(p.index(), std::move(clause), front);
  retire_locked(p.install(next), delete_index);
  note_change_locked(sym, arity);
  bump_and_reclaim_locked();
}

void Database::add_clause(TermTemplate tmpl, bool front) {
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    add_clause_locked(std::move(tmpl), front);
  }
  drain_hooks();
}

bool Database::retract_clause(std::uint32_t sym, unsigned arity,
                              std::uint32_t ordinal) {
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    const Root* r = root_.load(std::memory_order_relaxed);
    auto it = r->ids.find(pred_key(sym, arity));
    if (it == r->ids.end()) return false;
    Predicate& p = *it->second;
    const PredIndex& ix = p.index();
    if (ordinal >= ix.num_clauses() || ix.clause(ordinal).retracted) {
      return false;
    }
    retire_locked(p.install(PredIndex::make_retract(ix, ordinal)),
                  delete_index);
    note_change_locked(sym, arity);
    bump_and_reclaim_locked();
  }
  drain_hooks();
  return true;
}

void Database::set_dynamic(std::uint32_t sym, unsigned arity) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  get_or_create_locked(sym, arity).set_dynamic();
}

void Database::set_tabled(std::uint32_t sym, unsigned arity) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  get_or_create_locked(sym, arity).set_tabled();
  has_tabled_.store(true, std::memory_order_relaxed);
}

std::uint64_t Database::add_change_hook(ChangeHook hook) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  const std::uint64_t id = next_hook_id_++;
  hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Database::remove_change_hook(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->first == id) {
      hooks_.erase(it);
      return;
    }
  }
}

void Database::note_change_locked(std::uint32_t sym, unsigned arity) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.emplace_back(sym, arity);
}

void Database::drain_hooks() const {
  for (const Database* d : t_draining) {
    if (d == this) return;  // nested mutation from a hook: outer loop drains
  }
  t_draining.push_back(this);
  struct Pop {
    ~Pop() { t_draining.pop_back(); }
  } pop;
  // dispatch_mu_ makes the drain single-file so events fire exactly once
  // and in publication order even when several writers race to drain.
  std::lock_guard<std::mutex> dispatch(dispatch_mu_);
  for (;;) {
    std::uint32_t sym = 0;
    unsigned arity = 0;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      if (pending_.empty()) break;
      sym = pending_.front().first;
      arity = pending_.front().second;
      pending_.pop_front();
    }
    std::vector<std::pair<std::uint64_t, ChangeHook>> hooks;
    {
      std::lock_guard<std::mutex> lock(hooks_mu_);
      hooks = hooks_;
    }
    for (const auto& [id, hook] : hooks) hook(sym, arity);
  }
}

Database::WriteTxn::WriteTxn(Database& db) : db_(db), lock_(db.writer_mu_) {}

Database::WriteTxn::~WriteTxn() {
  lock_.unlock();
  db_.drain_hooks();
}

Predicate* Database::WriteTxn::find(std::uint32_t sym, unsigned arity) {
  const Root* r = db_.root_.load(std::memory_order_relaxed);
  auto it = r->ids.find(pred_key(sym, arity));
  return it == r->ids.end() ? nullptr : it->second;
}

void Database::WriteTxn::retract(Predicate& p, std::uint32_t ordinal) {
  db_.retire_locked(p.install(PredIndex::make_retract(p.index(), ordinal)),
                    delete_index);
  db_.note_change_locked(p.sym(), p.arity());
  db_.bump_and_reclaim_locked();
}

std::size_t Database::num_predicates() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return root_.load(std::memory_order_relaxed)->list.size();
}

void Database::handle_directive_locked(const TermTemplate& tmpl) {
  // Directive root: ':-'(Goal). Recognize dynamic/1 and table/1 with a
  // (possibly comma-separated) list of name/arity specs; ignore everything
  // else.
  const Cell goal = tmpl.cells[tmpl.root.payload() + 1];
  if (goal.tag() != Tag::Str) return;
  const Cell f = tmpl.cells[goal.payload()];
  if (f.fun_arity() != 1) return;
  const std::string& fname = syms_.name(f.fun_symbol());
  const bool tabled = fname == "table";
  if (!tabled && fname != "dynamic") return;
  const char* err = tabled ? "malformed table/1 directive"
                           : "malformed dynamic/1 directive";

  std::vector<Cell> work{tmpl.cells[goal.payload() + 1]};
  const std::uint32_t comma = syms_.known().comma;
  while (!work.empty()) {
    Cell spec = work.back();
    work.pop_back();
    if (spec.tag() != Tag::Str) throw AceError(err);
    const Cell sf = tmpl.cells[spec.payload()];
    if (sf.fun_symbol() == comma && sf.fun_arity() == 2) {
      work.push_back(tmpl.cells[spec.payload() + 1]);
      work.push_back(tmpl.cells[spec.payload() + 2]);
      continue;
    }
    if (syms_.name(sf.fun_symbol()) == "/" && sf.fun_arity() == 2) {
      const Cell name = tmpl.cells[spec.payload() + 1];
      const Cell arity = tmpl.cells[spec.payload() + 2];
      if (name.tag() == Tag::Atm && arity.tag() == Tag::Int) {
        Predicate& p = get_or_create_locked(
            name.symbol(), static_cast<unsigned>(arity.integer()));
        if (tabled) {
          p.set_tabled();
          has_tabled_.store(true, std::memory_order_relaxed);
        } else {
          p.set_dynamic();
        }
        continue;
      }
    }
    throw AceError(err);
  }
}

void Database::consult(const std::string& src) {
  std::vector<TermTemplate> clauses = parse_program(syms_, src);
  const std::uint32_t neck = syms_.known().neck;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    for (TermTemplate& tmpl : clauses) {
      // A directive is ':-'(Goal) — the prefix operator parse.
      if (tmpl.root.tag() == Tag::Str) {
        const Cell f = tmpl.cells[tmpl.root.payload()];
        if (f.fun_symbol() == neck && f.fun_arity() == 1) {
          handle_directive_locked(tmpl);
          continue;
        }
      }
      add_clause_locked(std::move(tmpl), /*front=*/false);
    }
  }
  drain_hooks();
}

}  // namespace ace
