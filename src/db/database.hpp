// The clause database: predicate registry, program consultation (parsing +
// directives), dynamic assert/retract.
//
// Index buckets are rebuilt eagerly on mutation so that runtime candidate
// lookups are read-only; a shared_mutex guards against assert/retract racing
// with lookups in the real-thread runtime.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/predicate.hpp"
#include "parse/parser.hpp"

namespace ace {

class Database {
 public:
  Database();

  SymbolTable& syms() { return syms_; }
  const SymbolTable& syms() const { return syms_; }

  // Parses and loads a program. Supports the directives
  //   :- dynamic name/arity, name/arity, ...
  //   :- table name/arity, name/arity, ...
  // Other directives are ignored with effect only on parse (no warnings:
  // benchmark sources carry SICStus directives we do not need).
  void consult(const std::string& src);

  // Adds one clause (already parsed). front=true for asserta.
  void add_clause(TermTemplate tmpl, bool front = false);

  // Predicate lookup; returns nullptr if never defined.
  const Predicate* find(std::uint32_t sym, unsigned arity) const;
  Predicate* find_mutable(std::uint32_t sym, unsigned arity);
  Predicate& get_or_create(std::uint32_t sym, unsigned arity);

  void set_dynamic(std::uint32_t sym, unsigned arity);

  // Marks a predicate as tabled (`:- table name/arity.`). has_tabled() is
  // the engines' cheap gate: when no predicate was ever declared tabled,
  // the tabling interception path is skipped entirely and execution is
  // bit-identical to a build without the subsystem.
  void set_tabled(std::uint32_t sym, unsigned arity);
  bool has_tabled() const {
    return has_tabled_.load(std::memory_order_relaxed);
  }

  // ---- Change hooks ------------------------------------------------------
  // Observers of clause-set mutations (assert/retract/consult), keyed by
  // the mutated predicate. Fired *inside* the database write lock, right
  // where stale StaticFacts are discarded, so an observer sees every
  // mutation exactly once and in order. Hooks must not call back into
  // self-locking Database entry points (lock order: db -> hook internals).
  // tab::TableSpace uses this to drop completed tables whose answers were
  // derived from the mutated predicate.
  using ChangeHook = std::function<void(std::uint32_t sym, unsigned arity)>;
  std::uint64_t add_change_hook(ChangeHook hook);
  void remove_change_hook(std::uint64_t id);
  // Fires the hooks for one mutated predicate. Exposed for mutation sites
  // that bypass add_clause_nolock (retract/1 calls Predicate::
  // retract_clause directly under its own write_guard()).
  void note_change_nolock(std::uint32_t sym, unsigned arity) const;

  // Snapshot of candidate ordinals for a call: copies under shared lock so
  // the result stays valid across mutations. The engine avoids the copy on
  // the fast path via with_candidates().
  template <typename Fn>
  auto with_candidates(std::uint32_t sym, unsigned arity,
                       const IndexKey& call, Fn&& fn) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const Predicate* p = find_locked(sym, arity);
    static const std::vector<std::uint32_t> kEmpty;
    if (p == nullptr) return fn(static_cast<const Predicate*>(nullptr), kEmpty);
    return fn(p, p->candidates(call));
  }

  std::size_t num_predicates() const;

  // Enumerates every predicate under a shared lock (analysis and
  // introspection; `fn` must not call self-locking Database entry points).
  template <typename Fn>
  void for_each_predicate(Fn&& fn) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& p : preds_) fn(*p);
  }

  // Mutable variant (exclusive lock): the static-facts pass uses it to
  // attach analysis results to predicates.
  template <typename Fn>
  void for_each_predicate_mutable(Fn&& fn) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (const auto& p : preds_) fn(*p);
  }

  // ---- Engine hot-path locking surface -----------------------------------
  // The engines read candidate buckets and clause templates on every call;
  // under the serving layer those reads race with assert/retract from
  // concurrently served queries. Hot paths therefore take read_guard() and
  // use the *_nolock accessors inside it (shared_mutex is not recursive:
  // never call find()/find_mutable() while holding a guard). Mutating
  // builtins take write_guard() for the scan-and-mutate sequence.
  //
  // Debug builds enforce that contract: the guards register themselves in
  // a thread-local registry, and the self-locking entry points (find,
  // find_mutable, add_clause, consult, get_or_create) abort with a
  // diagnostic when called while the same thread holds a guard on this
  // database — the release-build behavior would be a silent deadlock.
  class ReadGuard {
   public:
    explicit ReadGuard(const Database& db) : db_(&db), lock_(db.mu_) {
      db.debug_note_guard(+1);
    }
    ReadGuard(ReadGuard&& o) noexcept
        : db_(o.db_), lock_(std::move(o.lock_)) {
      o.db_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&&) = delete;
    ~ReadGuard() {
      if (db_ != nullptr) db_->debug_note_guard(-1);
    }

   private:
    const Database* db_;
    std::shared_lock<std::shared_mutex> lock_;
  };
  class WriteGuard {
   public:
    explicit WriteGuard(const Database& db) : db_(&db), lock_(db.mu_) {
      db.debug_note_guard(+1);
    }
    WriteGuard(WriteGuard&& o) noexcept
        : db_(o.db_), lock_(std::move(o.lock_)) {
      o.db_ = nullptr;
    }
    WriteGuard& operator=(WriteGuard&&) = delete;
    ~WriteGuard() {
      if (db_ != nullptr) db_->debug_note_guard(-1);
    }

   private:
    const Database* db_;
    std::unique_lock<std::shared_mutex> lock_;
  };
  ReadGuard read_guard() const { return ReadGuard(*this); }
  WriteGuard write_guard() const { return WriteGuard(*this); }
  const Predicate* find_nolock(std::uint32_t sym, unsigned arity) const {
    return find_locked(sym, arity);
  }
  Predicate* find_mutable_nolock(std::uint32_t sym, unsigned arity) {
    return const_cast<Predicate*>(find_locked(sym, arity));
  }
  // Adds one clause while the caller already holds write_guard().
  void add_clause_nolock(TermTemplate tmpl, bool front = false);

 private:
  const Predicate* find_locked(std::uint32_t sym, unsigned arity) const;
  void handle_directive(const TermTemplate& tmpl);

  // Debug re-entrancy sentinel (no-ops in release builds).
#ifndef NDEBUG
  void debug_note_guard(int delta) const;
  void debug_assert_unguarded(const char* fn) const;
#else
  void debug_note_guard(int) const {}
  void debug_assert_unguarded(const char*) const {}
#endif

  SymbolTable syms_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Predicate>> preds_;
  std::unordered_map<std::uint64_t, std::uint32_t> pred_ids_;

  std::atomic<bool> has_tabled_{false};
  // Hook registry under its own mutex so registration/removal never
  // contends with the clause-set lock (fire order: mu_ -> hooks_mu_).
  mutable std::mutex hooks_mu_;
  mutable std::vector<std::pair<std::uint64_t, ChangeHook>> hooks_;
  mutable std::uint64_t next_hook_id_ = 1;
};

}  // namespace ace
