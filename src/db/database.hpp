// The clause database: predicate registry, program consultation (parsing +
// directives), dynamic assert/retract — on an epoch-reclaimed concurrent
// structure (RCU-style; see docs/database.md).
//
// Concurrency model
//   Readers   pin a db::Snapshot (db/snapshot.hpp) and then read predicate
//             handles and PredIndex versions lock-free; they never block
//             and never observe a half-published index.
//   Writers   (assert/retract/consult/declarations) serialize on one
//             internal writer mutex, build immutable successor versions
//             off-line, publish them with a single atomic pointer swap,
//             and retire the previous version into an epoch limbo list.
//   Reclaim   a retired version is freed once the global epoch has moved
//             past every pinned snapshot — a non-blocking check performed
//             after each publication, so a parked reader only *delays*
//             reclamation and never stalls a writer.
//
// Change hooks fire *outside* the writer critical section (queued under the
// lock, drained after release), so a hook may freely call back into any
// Database entry point — including mutating ones — without deadlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/predicate.hpp"
#include "parse/parser.hpp"

namespace ace {

namespace db {
class Snapshot;
}  // namespace db

class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  SymbolTable& syms() { return syms_; }
  const SymbolTable& syms() const { return syms_; }

  // Parses and loads a program. Supports the directives
  //   :- dynamic name/arity, name/arity, ...
  //   :- table name/arity, name/arity, ...
  // Other directives are ignored with effect only on parse (no warnings:
  // benchmark sources carry SICStus directives we do not need). The whole
  // load publishes under one writer critical section; change hooks for the
  // loaded clauses fire once the section is released.
  void consult(const std::string& src);

  // Adds one clause (already parsed). front=true for asserta.
  void add_clause(TermTemplate tmpl, bool front = false);

  // Retracts the clause at `ordinal` of sym/arity (tests and benches; the
  // retract/1 builtin uses WriteTxn for its scan-and-retract sequence).
  // Returns false when the predicate or live clause does not exist.
  bool retract_clause(std::uint32_t sym, unsigned arity,
                      std::uint32_t ordinal);

  // Cold-path predicate lookup; returns nullptr if never defined. Briefly
  // takes the writer mutex — hot paths use db::Snapshot::find() instead,
  // which is lock-free under an epoch pin. The returned handle is stable
  // for the lifetime of the database.
  const Predicate* find(std::uint32_t sym, unsigned arity) const;
  Predicate* find_mutable(std::uint32_t sym, unsigned arity);
  Predicate& get_or_create(std::uint32_t sym, unsigned arity);

  // Current global epoch. Every publication (assert/retract/consult, and
  // even cold-path predicate creation) bumps it, so an unchanged value
  // across two reads proves no mutation was published in between — the
  // serving result cache samples it before a query and declines to
  // install an entry when it moved (stale-insert double-check).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // Current generation of sym/arity's published index, read under the
  // writer mutex so the version cannot be retired mid-read. Returns
  // tab-style kDepUndefined (all-ones) when the predicate was never
  // defined: a later definition publishes a real generation and therefore
  // mismatches. Used by the result cache's hit-time dep validation.
  std::uint64_t pred_generation(std::uint32_t sym, unsigned arity) const;

  void set_dynamic(std::uint32_t sym, unsigned arity);

  // Marks a predicate as tabled (`:- table name/arity.`). has_tabled() is
  // the engines' cheap gate: when no predicate was ever declared tabled,
  // the tabling interception path is skipped entirely and execution is
  // bit-identical to a build without the subsystem.
  void set_tabled(std::uint32_t sym, unsigned arity);
  bool has_tabled() const {
    return has_tabled_.load(std::memory_order_relaxed);
  }

  // ---- Change hooks ------------------------------------------------------
  // Observers of clause-set mutations (assert/retract/consult), keyed by
  // the mutated predicate. Events are queued during the writer critical
  // section and dispatched after it releases, exactly once and in
  // publication order; a hook may therefore call back into any Database
  // entry point (nested mutations fold into the outer drain).
  // tab::TableSpace uses this to drop exactly the completed tables whose
  // answers were derived from the mutated predicate.
  using ChangeHook = std::function<void(std::uint32_t sym, unsigned arity)>;
  std::uint64_t add_change_hook(ChangeHook hook);
  void remove_change_hook(std::uint64_t id);

  std::size_t num_predicates() const;

  // Enumerates every predicate in creation order, under the writer mutex
  // (analysis and introspection; `fn` must not call self-locking Database
  // entry points — use get/lookup on the passed handles instead).
  template <typename Fn>
  void for_each_predicate(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(writer_mu_);
    for (const Predicate* p : root_.load(std::memory_order_relaxed)->list) {
      fn(*p);
    }
  }

  // Mutable variant: the static-facts pass uses it to attach analysis
  // results to the current predicate versions.
  template <typename Fn>
  void for_each_predicate_mutable(Fn&& fn) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    for (Predicate* p : root_.load(std::memory_order_relaxed)->list) {
      fn(*p);
    }
  }

  // ---- Write transactions ------------------------------------------------
  // Scan-and-mutate sequence for retract/1: holds the writer mutex for its
  // whole lifetime so the scanned view cannot change between the matching
  // unification and the retraction. Change hooks queued by retract() fire
  // from the destructor, after the lock releases.
  class WriteTxn {
   public:
    explicit WriteTxn(Database& db);
    ~WriteTxn();
    WriteTxn(const WriteTxn&) = delete;
    WriteTxn& operator=(const WriteTxn&) = delete;

    Predicate* find(std::uint32_t sym, unsigned arity);
    // The stable view for the scan: no publication can happen while the
    // transaction is open, so the reference is valid until destruction.
    const PredIndex& view(const Predicate& p) const { return p.index(); }
    void retract(Predicate& p, std::uint32_t ordinal);

   private:
    Database& db_;
    std::unique_lock<std::mutex> lock_;
  };

  // Debug/test introspection: retired-but-unreclaimed versions currently
  // sitting in this database's limbo list.
  std::size_t limbo_size() const;

  // ---- Health introspection ----------------------------------------------
  // Instantaneous view of the epoch/RCU machinery for the serving metrics:
  // how far reclamation lags behind the newest epoch, how many snapshots
  // currently pin one, how old the oldest pin is. Sampled (each field is
  // its own atomic read, the pin-age high-water advances at sampling time),
  // so values are monotone-ish gauges, not a transactional cut.
  struct HealthStats {
    std::uint64_t epoch = 0;             // current global epoch
    std::uint64_t min_pinned_epoch = 0;  // == epoch when nothing is pinned
    std::uint64_t epoch_lag = 0;         // epoch - min_pinned_epoch
    std::uint64_t limbo_depth = 0;       // retired versions awaiting free
    std::uint64_t pinned_snapshots = 0;  // slots holding a live pin
    std::uint64_t index_versions = 0;    // live PredIndex objects (global)
    std::uint64_t oldest_pin_age_ns = 0; // age of the oldest live pin
    std::uint64_t pin_age_hw_ns = 0;     // high-water pin age observed
  };
  HealthStats health_stats() const;

 private:
  friend class db::Snapshot;

  // The atomically published predicate registry. Predicate handles are
  // owned by owned_ (stable addresses, freed only in ~Database); the Root
  // itself is versioned and epoch-retired like a PredIndex.
  struct Root {
    std::unordered_map<std::uint64_t, Predicate*> ids;
    std::vector<Predicate*> list;
  };

  // One reader pin slot. Slots have stable addresses (boxed), are reused
  // via a free list, and are padded so pin/refresh stores of distinct
  // snapshots do not false-share.
  struct EpochSlot {
    std::atomic<std::uint64_t> epoch{kIdleEpoch};
    // Steady-clock stamp of the pin() that claimed this slot (0 = idle).
    // Written once per Snapshot lifetime — pin(), not the per-step
    // refresh() hot path — and read by health_stats().
    std::atomic<std::uint64_t> pinned_at_ns{0};
    bool in_use = false;  // guarded by slots_mu_
    char pad_[64 - 2 * sizeof(std::atomic<std::uint64_t>) - sizeof(bool)];
  };
  static constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};

  struct Limbo {
    const void* p;
    void (*del)(const void*);
    std::uint64_t epoch;  // global epoch at retirement
  };

  // Writer internals; all *_locked functions require writer_mu_ held.
  Predicate& get_or_create_locked(std::uint32_t sym, unsigned arity);
  void add_clause_locked(TermTemplate tmpl, bool front);
  void retire_locked(const void* p, void (*del)(const void*));
  void bump_and_reclaim_locked();
  std::uint64_t min_pinned_epoch() const;
  void note_change_locked(std::uint32_t sym, unsigned arity);
  void drain_hooks() const;
  void handle_directive_locked(const TermTemplate& tmpl);

  // Snapshot support (see db/snapshot.cpp).
  EpochSlot* acquire_slot() const;
  void release_slot(EpochSlot* slot) const;

  SymbolTable syms_;

  // Writer serialization; also taken briefly by the cold-path readers
  // above (retire and free only ever happen under it, so pointers read
  // inside are safe without an epoch pin).
  mutable std::mutex writer_mu_;
  std::atomic<const Root*> root_;                 // seq_cst swaps/loads
  std::vector<std::unique_ptr<Predicate>> owned_;  // guarded by writer_mu_
  std::vector<Limbo> limbo_;                       // guarded by writer_mu_
  std::atomic<std::uint64_t> epoch_{1};

  mutable std::mutex slots_mu_;
  mutable std::vector<std::unique_ptr<EpochSlot>> slots_;
  // High-water pin age, advanced whenever health_stats() samples the
  // slots (sampling semantics: a pin released between samples may never
  // contribute its final age).
  mutable std::atomic<std::uint64_t> pin_age_hw_ns_{0};

  std::atomic<bool> has_tabled_{false};

  // Hook registry and the pending-event queue. Lock order is strictly
  // one-at-a-time: writer_mu_ -> pending_mu_ (queue), and the drain takes
  // dispatch_mu_ -> pending_mu_ / hooks_mu_ with writer_mu_ released — no
  // cycle, and hooks run with no Database lock held at all.
  mutable std::mutex hooks_mu_;
  mutable std::vector<std::pair<std::uint64_t, ChangeHook>> hooks_;
  mutable std::uint64_t next_hook_id_ = 1;
  mutable std::mutex dispatch_mu_;
  mutable std::mutex pending_mu_;
  mutable std::deque<std::pair<std::uint32_t, unsigned>> pending_;
};

}  // namespace ace
