// The clause database: predicate registry, program consultation (parsing +
// directives), dynamic assert/retract.
//
// Index buckets are rebuilt eagerly on mutation so that runtime candidate
// lookups are read-only; a shared_mutex guards against assert/retract racing
// with lookups in the real-thread runtime.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/predicate.hpp"
#include "parse/parser.hpp"

namespace ace {

class Database {
 public:
  Database();

  SymbolTable& syms() { return syms_; }
  const SymbolTable& syms() const { return syms_; }

  // Parses and loads a program. Supports the directives
  //   :- dynamic name/arity, name/arity, ...
  // Other directives are ignored with effect only on parse (no warnings:
  // benchmark sources carry SICStus directives we do not need).
  void consult(const std::string& src);

  // Adds one clause (already parsed). front=true for asserta.
  void add_clause(TermTemplate tmpl, bool front = false);

  // Predicate lookup; returns nullptr if never defined.
  const Predicate* find(std::uint32_t sym, unsigned arity) const;
  Predicate* find_mutable(std::uint32_t sym, unsigned arity);
  Predicate& get_or_create(std::uint32_t sym, unsigned arity);

  void set_dynamic(std::uint32_t sym, unsigned arity);

  // Snapshot of candidate ordinals for a call: copies under shared lock so
  // the result stays valid across mutations. The engine avoids the copy on
  // the fast path via with_candidates().
  template <typename Fn>
  auto with_candidates(std::uint32_t sym, unsigned arity,
                       const IndexKey& call, Fn&& fn) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const Predicate* p = find_locked(sym, arity);
    static const std::vector<std::uint32_t> kEmpty;
    if (p == nullptr) return fn(static_cast<const Predicate*>(nullptr), kEmpty);
    return fn(p, p->candidates(call));
  }

  std::size_t num_predicates() const;

  // ---- Engine hot-path locking surface -----------------------------------
  // The engines read candidate buckets and clause templates on every call;
  // under the serving layer those reads race with assert/retract from
  // concurrently served queries. Hot paths therefore take read_guard() and
  // use the *_nolock accessors inside it (shared_mutex is not recursive:
  // never call find()/find_mutable() while holding a guard). Mutating
  // builtins take write_guard() for the scan-and-mutate sequence.
  std::shared_lock<std::shared_mutex> read_guard() const {
    return std::shared_lock<std::shared_mutex>(mu_);
  }
  std::unique_lock<std::shared_mutex> write_guard() const {
    return std::unique_lock<std::shared_mutex>(mu_);
  }
  const Predicate* find_nolock(std::uint32_t sym, unsigned arity) const {
    return find_locked(sym, arity);
  }
  Predicate* find_mutable_nolock(std::uint32_t sym, unsigned arity) {
    return const_cast<Predicate*>(find_locked(sym, arity));
  }
  // Adds one clause while the caller already holds write_guard().
  void add_clause_nolock(TermTemplate tmpl, bool front = false);

 private:
  const Predicate* find_locked(std::uint32_t sym, unsigned arity) const;
  void handle_directive(const TermTemplate& tmpl);

  SymbolTable syms_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Predicate>> preds_;
  std::unordered_map<std::uint64_t, std::uint32_t> pred_ids_;
};

}  // namespace ace
