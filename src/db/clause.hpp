// Stored clauses and first-argument index keys.
#pragma once

#include <cstdint>

#include "term/build.hpp"

namespace ace {

// First-argument index key. Clause keys may have kind Var (the clause's
// first head argument is a variable: it matches every call); runtime call
// keys may have kind AnyCall (the call's first argument is unbound: every
// clause matches).
struct IndexKey {
  enum class Kind : std::uint8_t { Var, Int, Atom, Struct, List, AnyCall };
  Kind kind = Kind::Var;
  std::uint64_t value = 0;

  bool operator==(const IndexKey&) const = default;

  // True if a clause with this key can match a call with key `call`.
  bool matches_call(const IndexKey& call) const {
    if (kind == Kind::Var || call.kind == Kind::AnyCall) return true;
    return *this == call;
  }
};

struct IndexKeyHash {
  std::size_t operator()(const IndexKey& k) const {
    return static_cast<std::size_t>(k.value * 0x9e3779b97f4a7c15ull) ^
           static_cast<std::size_t>(k.kind);
  }
};

// A stored clause. The template is normalized so its root is always
// ':-'(Head, Body) (facts get body 'true').
struct Clause {
  TermTemplate tmpl;
  std::uint32_t head_sym = 0;
  unsigned head_arity = 0;
  IndexKey key;
  bool retracted = false;
  bool body_is_true = false;  // fact: skip pushing the body goal
};

// Computes the clause index key from a template's head first argument
// (template-relative), or the runtime key from a heap term.
IndexKey clause_index_key(const TermTemplate& tmpl, const SymbolTable& syms);
IndexKey call_index_key(const Store& store, Addr first_arg,
                        const SymbolTable& syms);

// Normalizes a parsed clause template into a Clause (wraps facts with
// ':-'(H, true), extracts the head functor, computes the index key).
// Throws AceError for malformed clauses (non-callable heads).
Clause make_clause(TermTemplate tmpl, SymbolTable& syms);

}  // namespace ace
