// db::Snapshot — the epoch-pinned read view of a Database.
//
// A pinned snapshot announces an epoch in one of the database's reader
// slots; from then on every PredIndex version (and registry Root) the
// reader can reach stays allocated until the snapshot refreshes past it or
// releases. Reads are lock-free: find() is one atomic root load plus a hash
// lookup, candidates() is one atomic version load plus a bucket lookup.
//
// Semantics: a pin guarantees *memory validity*, not staleness — accessors
// always see the latest published state at the moment of the access, which
// is exactly what the old per-access ReadGuard provided. Readers that need
// one consistent multi-step view of a predicate load `view(p)` (or
// p.index()) once and use that reference for the whole scoped operation.
//
// Lifecycle:
//   db::Snapshot snap(db);        // pin now, or default-construct + pin()
//   snap.refresh();               // safe point: caller holds no PredIndex
//                                 //   references; re-announces the current
//                                 //   epoch so writers can reclaim
//   snap.reset();                 // unpin (also on destruction)
//
// Engines pin one snapshot per worker and refresh it at the top of every
// step — turning the old per-lookup lock acquisition into a per-step
// relaxed load and branch. Single-threaded tools that never race a writer
// may skip pinning entirely (quiescent access is trivially safe).
#pragma once

#include <cstdint>
#include <vector>

#include "db/predicate.hpp"

namespace ace {

class Database;

namespace db {

class Snapshot {
 public:
  Snapshot() = default;
  explicit Snapshot(const Database& d) { pin(d); }
  ~Snapshot() { reset(); }
  Snapshot(Snapshot&& o) noexcept;
  Snapshot& operator=(Snapshot&& o) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  bool pinned() const { return slot_ != nullptr; }
  const Database* database() const { return db_; }

  // Pins to `d` (refreshes when already pinned to it, repins when pinned
  // to a different database).
  void pin(const Database& d);
  // Releases the pin; lock-free accessors must not be used afterwards.
  void reset();
  // Re-announces the current global epoch. Precondition: the caller holds
  // no PredIndex references obtained through this snapshot — after the
  // refresh, versions retired before the new epoch may be freed.
  void refresh();

  // Lock-free predicate lookup; nullptr if never defined. The returned
  // handle is stable for the database's lifetime (only index() accesses
  // need the pin).
  const Predicate* find(std::uint32_t sym, unsigned arity) const;

  // One consistent index view for a scoped operation (generation check +
  // candidates + clause access must all go through the same view).
  const PredIndex& view(const Predicate& p) const { return p.index(); }

  // Point-query conveniences (each is a single version load).
  const std::vector<std::uint32_t>& candidates(const Predicate& p,
                                               const IndexKey& call) const {
    return p.candidates(call);
  }
  std::uint32_t static_facts(const Predicate& p) const {
    return p.static_facts();
  }

  // Registry enumeration (creation order), lock-free on the pinned root.
  std::size_t num_predicates() const;
  const Predicate* predicate_at(std::size_t i) const;

  // Steady-clock nanoseconds (shared monotonic scale for pin-age
  // accounting; also used by Database::health_stats).
  static std::uint64_t mono_ns();

 private:
  const Database* db_ = nullptr;
  void* slot_ = nullptr;  // Database::EpochSlot (opaque here)
  std::uint64_t epoch_ = 0;
};

}  // namespace db
}  // namespace ace
