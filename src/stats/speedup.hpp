// Speedup decomposition and critical-path analysis ("where did the
// speedup go").
//
// Virtual-time accounting identity, per run with N agents and makespan T:
//
//   N * T  =  work  +  overhead  +  idle_charged  +  idle_tail
//
// where work/overhead/idle_charged come straight from the per-category
// attribution (conservation: their sum is Σ agent clocks) and idle_tail is
// the uncharged time between an agent's final clock value and the makespan.
// Dividing by the work term gives the decomposition the paper's tables
// imply: achieved speedup = work / T (the run's own work as the
// sequential-equivalent reference), ideal = N, and every lost fraction is
// pinned on a category.
//
// The optional critical-path pass consumes a sim Tracer recording
// (SlotStart/SlotComplete/SlotFail spans) and reports, per parcall frame,
// the serialized slot time vs the longest slot — the irreducible critical
// path — so load imbalance is distinguishable from overhead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/result.hpp"
#include "sim/trace.hpp"
#include "stats/attrib.hpp"

namespace ace {

struct ParcallPathRow {
  std::uint64_t pf = 0;          // parcall frame id
  unsigned slots = 0;            // executed slot spans
  std::uint64_t serialized = 0;  // Σ slot durations
  std::uint64_t critical = 0;    // max slot duration
};

struct SpeedupReport {
  unsigned agents = 1;
  std::uint64_t makespan = 0;          // virtual_time of the run
  std::uint64_t total_agent_time = 0;  // Σ agent clocks
  // The four-way split of agents*makespan (see header comment).
  std::uint64_t work = 0;
  std::uint64_t overhead = 0;
  std::uint64_t idle_charged = 0;
  std::uint64_t idle_tail = 0;
  AttribBreakdown attrib;  // category detail behind work/overhead/idle
  SchemaSavings savings;   // what the enabled schemas saved this run

  double ideal_speedup() const { return static_cast<double>(agents); }
  // work / makespan: how much faster than a hypothetical sequential
  // execution of the same work this run finished.
  double achieved_speedup() const;
  double efficiency() const {
    return agents == 0 ? 0.0 : achieved_speedup() / agents;
  }

  // Critical-path rows (filled by analyze_critical_path; empty otherwise),
  // largest serialized time first, capped by the caller.
  std::vector<ParcallPathRow> parcalls;
  std::uint64_t parcall_serialized_total = 0;
  std::uint64_t parcall_critical_total = 0;

  // Multi-line human-readable report (the `ace_run --explain` output).
  std::string render() const;
  std::string to_json() const;
};

// Builds the decomposition from a finished run. `agents` must be the
// configured agent count (SolveResult carries one clock per agent already,
// but Seq runs have exactly one).
SpeedupReport analyze_speedup(const SolveResult& result, unsigned agents);

// Adds per-parcall critical-path rows from a sim Tracer recording of the
// same run. Keeps the `max_rows` largest parcalls by serialized time.
void analyze_critical_path(SpeedupReport& report,
                           const std::vector<TraceRecord>& records,
                           std::size_t max_rows = 8);

}  // namespace ace
