#include "stats/attrib.hpp"

#include <algorithm>

#include "stats/stats.hpp"
#include "support/strutil.hpp"

namespace ace {

std::uint64_t AttribBreakdown::total() const {
  std::uint64_t s = 0;
  for (std::uint64_t v : at) s += v;
  return s;
}

std::uint64_t AttribBreakdown::overhead() const {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    if (cost_cat_is_overhead(static_cast<CostCat>(i))) s += at[i];
  }
  return s;
}

std::uint64_t AttribBreakdown::work() const {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    CostCat c = static_cast<CostCat>(i);
    if (!cost_cat_is_overhead(c) && c != CostCat::kIdle) s += at[i];
  }
  return s;
}

void AttribBreakdown::add(const AttribBreakdown& o) {
  for (std::size_t i = 0; i < kNumCostCats; ++i) at[i] += o.at[i];
}

std::string AttribBreakdown::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    if (i != 0) out += ",";
    out += strf("\"%s\":%llu", cost_cat_name(static_cast<CostCat>(i)),
                (unsigned long long)at[i]);
  }
  out += "}";
  return out;
}

std::string AttribBreakdown::table(const std::string& indent) const {
  std::uint64_t tot = total();
  std::string out;
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    if (at[i] == 0) continue;
    double pct = tot == 0 ? 0.0 : 100.0 * (double)at[i] / (double)tot;
    out += strf("%s%-13s %12llu  %5.1f%%\n", indent.c_str(),
                cost_cat_name(static_cast<CostCat>(i)),
                (unsigned long long)at[i], pct);
  }
  return out;
}

std::vector<CostCat> AttribBreakdown::top_categories(std::size_t k) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    if (at[i] > 0) idx.push_back(i);
  }
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return at[a] > at[b]; });
  if (idx.size() > k) idx.resize(k);
  std::vector<CostCat> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) out.push_back(static_cast<CostCat>(i));
  return out;
}

std::string SchemaSavings::to_json() const {
  return strf(
      "{\"flattening\":%llu,\"procrastination\":%llu,"
      "\"sequentialization\":%llu,\"static_elision\":%llu}",
      (unsigned long long)flattening, (unsigned long long)procrastination,
      (unsigned long long)sequentialization,
      (unsigned long long)static_elision);
}

SchemaSavings schema_savings(const Counters& stats, const CostModel& costs) {
  SchemaSavings s;
  // LPCO: each merge avoids allocating a nested parcall frame and, on
  // backward execution, tearing it down. LAO: each reuse replaces a fresh
  // choice point (choicepoint) by an in-place refresh (lao_update); the
  // saving can be negative per the paper's Table 3 at 1 agent, but with the
  // standard model choicepoint > lao_update, so it is a saving here.
  s.flattening = stats.lpco_merges * (costs.parcall_frame + costs.pf_teardown);
  if (costs.choicepoint > costs.lao_update) {
    s.flattening += stats.lao_reuses * (costs.choicepoint - costs.lao_update);
  }
  // SHALLOW procrastinates markers; each *pair* of skipped markers is one
  // input + one end marker never allocated.
  s.procrastination =
      (stats.shallow_skipped_markers / 2) * (costs.input_marker +
                                             costs.end_marker);
  // PDO sequentializes adjacent slots; each merge elides the end marker of
  // the finished slot and the input marker of the next.
  s.sequentialization =
      stats.pdo_merges * (costs.end_marker + costs.input_marker);
  s.static_elision = stats.static_elisions * costs.opt_check;
  return s;
}

std::string collapsed_stacks(
    const std::vector<AttribBreakdown>& per_agent,
    const std::vector<std::vector<PredAttrib>>& per_agent_preds) {
  std::string out;
  for (std::size_t a = 0; a < per_agent.size(); ++a) {
    const bool have_preds =
        a < per_agent_preds.size() && !per_agent_preds[a].empty();
    if (have_preds) {
      for (const PredAttrib& p : per_agent_preds[a]) {
        for (std::size_t i = 0; i < kNumCostCats; ++i) {
          if (p.a.at[i] == 0) continue;
          out += strf("agent%zu;%s;%s %llu\n", a, p.pred.c_str(),
                      cost_cat_name(static_cast<CostCat>(i)),
                      (unsigned long long)p.a.at[i]);
        }
      }
    } else {
      for (std::size_t i = 0; i < kNumCostCats; ++i) {
        if (per_agent[a].at[i] == 0) continue;
        out += strf("agent%zu;%s %llu\n", a,
                    cost_cat_name(static_cast<CostCat>(i)),
                    (unsigned long long)per_agent[a].at[i]);
      }
    }
  }
  return out;
}

}  // namespace ace
