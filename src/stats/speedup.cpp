#include "stats/speedup.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "support/strutil.hpp"

namespace ace {

double SpeedupReport::achieved_speedup() const {
  if (makespan == 0) return 0.0;
  return static_cast<double>(work) / static_cast<double>(makespan);
}

SpeedupReport analyze_speedup(const SolveResult& result, unsigned agents) {
  SpeedupReport r;
  r.agents = agents == 0 ? 1 : agents;
  r.makespan = result.virtual_time;
  r.attrib = result.attrib;
  r.savings = result.savings;
  r.work = result.attrib.work();
  r.overhead = result.attrib.overhead();
  r.idle_charged = result.attrib.idle();
  for (std::uint64_t c : result.agent_clocks) r.total_agent_time += c;
  if (result.agent_clocks.empty()) r.total_agent_time = result.virtual_time;
  // Tail idle: agents whose clock stopped before the makespan. The or-
  // parallel makespan is the max clock, the and-parallel one comes from the
  // driver; either way each term is clamped at zero.
  std::uint64_t slots = result.agent_clocks.empty() ? 1
                        : static_cast<std::uint64_t>(result.agent_clocks.size());
  for (std::uint64_t i = 0; i < slots; ++i) {
    std::uint64_t c =
        result.agent_clocks.empty() ? result.virtual_time : result.agent_clocks[i];
    if (r.makespan > c) r.idle_tail += r.makespan - c;
  }
  return r;
}

void analyze_critical_path(SpeedupReport& report,
                           const std::vector<TraceRecord>& records,
                           std::size_t max_rows) {
  struct Acc {
    unsigned slots = 0;
    std::uint64_t serialized = 0;
    std::uint64_t critical = 0;
  };
  // Open slot spans keyed by (agent, pf, slot) — a slot may run many times
  // (recomputation after outside backtracking), each span counted.
  std::map<std::tuple<unsigned, std::uint64_t, std::uint64_t>, std::uint64_t>
      open;
  std::unordered_map<std::uint64_t, Acc> per_pf;
  for (const TraceRecord& rec : records) {
    switch (rec.event) {
      case TraceEvent::SlotStart:
        open[{rec.agent, rec.a, rec.b}] = rec.time;
        break;
      case TraceEvent::SlotComplete:
      case TraceEvent::SlotFail: {
        auto it = open.find({rec.agent, rec.a, rec.b});
        if (it == open.end()) break;  // truncated recording
        std::uint64_t dur = rec.time >= it->second ? rec.time - it->second : 0;
        open.erase(it);
        Acc& acc = per_pf[rec.a];
        ++acc.slots;
        acc.serialized += dur;
        acc.critical = std::max(acc.critical, dur);
        break;
      }
      default:
        break;
    }
  }
  report.parcalls.clear();
  report.parcall_serialized_total = 0;
  report.parcall_critical_total = 0;
  for (const auto& [pf, acc] : per_pf) {
    report.parcalls.push_back({pf, acc.slots, acc.serialized, acc.critical});
    report.parcall_serialized_total += acc.serialized;
    report.parcall_critical_total += acc.critical;
  }
  std::sort(report.parcalls.begin(), report.parcalls.end(),
            [](const ParcallPathRow& a, const ParcallPathRow& b) {
              if (a.serialized != b.serialized) return a.serialized > b.serialized;
              return a.pf < b.pf;
            });
  if (report.parcalls.size() > max_rows) report.parcalls.resize(max_rows);
}

std::string SpeedupReport::render() const {
  std::string out;
  out += strf("speedup decomposition (%u agents, makespan %llu)\n", agents,
              (unsigned long long)makespan);
  out += strf("  achieved speedup  %6.2fx   (ideal %.0fx, efficiency %.0f%%)\n",
              achieved_speedup(), ideal_speedup(), 100.0 * efficiency());
  std::uint64_t budget = static_cast<std::uint64_t>(agents) * makespan;
  auto pct = [&](std::uint64_t v) {
    return budget == 0 ? 0.0 : 100.0 * (double)v / (double)budget;
  };
  out += strf("  agent-time budget %12llu  (agents x makespan)\n",
              (unsigned long long)budget);
  out += strf("    work            %12llu  %5.1f%%\n", (unsigned long long)work,
              pct(work));
  out += strf("    overhead        %12llu  %5.1f%%\n",
              (unsigned long long)overhead, pct(overhead));
  out += strf("    idle (charged)  %12llu  %5.1f%%\n",
              (unsigned long long)idle_charged, pct(idle_charged));
  out += strf("    idle (tail)     %12llu  %5.1f%%\n",
              (unsigned long long)idle_tail, pct(idle_tail));
  out += "  by category:\n";
  out += attrib.table("    ");
  if (savings.total() > 0) {
    out += "  schema savings (virtual time not spent):\n";
    auto line = [&](const char* name, std::uint64_t v) {
      if (v > 0) {
        out += strf("    %-18s %12llu\n", name, (unsigned long long)v);
      }
    };
    line("flattening", savings.flattening);
    line("procrastination", savings.procrastination);
    line("sequentialization", savings.sequentialization);
    line("static elision", savings.static_elision);
  }
  if (!parcalls.empty()) {
    out += strf(
        "  critical path over %zu largest parcalls "
        "(serialized %llu, critical %llu -> ideal parcall speedup %.2fx):\n",
        parcalls.size(), (unsigned long long)parcall_serialized_total,
        (unsigned long long)parcall_critical_total,
        parcall_critical_total == 0
            ? 0.0
            : (double)parcall_serialized_total /
                  (double)parcall_critical_total);
    out += "    pf        slots   serialized     critical   balance\n";
    for (const ParcallPathRow& row : parcalls) {
      double balance = row.critical == 0 || row.slots == 0
                           ? 0.0
                           : (double)row.serialized /
                                 ((double)row.critical * (double)row.slots);
      out += strf("    %-8llu %6u %12llu %12llu    %5.1f%%\n",
                  (unsigned long long)row.pf, row.slots,
                  (unsigned long long)row.serialized,
                  (unsigned long long)row.critical, 100.0 * balance);
    }
  }
  return out;
}

std::string SpeedupReport::to_json() const {
  std::string out = strf(
      "{\"agents\":%u,\"makespan\":%llu,\"total_agent_time\":%llu,"
      "\"work\":%llu,\"overhead\":%llu,\"idle_charged\":%llu,"
      "\"idle_tail\":%llu,\"achieved_speedup\":%.4f,\"efficiency\":%.4f",
      agents, (unsigned long long)makespan,
      (unsigned long long)total_agent_time, (unsigned long long)work,
      (unsigned long long)overhead, (unsigned long long)idle_charged,
      (unsigned long long)idle_tail, achieved_speedup(), efficiency());
  out += ",\"attrib\":" + attrib.to_json();
  out += ",\"schema_savings\":" + savings.to_json();
  if (!parcalls.empty()) {
    out += strf(",\"parcall_serialized\":%llu,\"parcall_critical\":%llu",
                (unsigned long long)parcall_serialized_total,
                (unsigned long long)parcall_critical_total);
    out += ",\"parcalls\":[";
    for (std::size_t i = 0; i < parcalls.size(); ++i) {
      if (i != 0) out += ",";
      out += strf("{\"pf\":%llu,\"slots\":%u,\"serialized\":%llu,"
                  "\"critical\":%llu}",
                  (unsigned long long)parcalls[i].pf, parcalls[i].slots,
                  (unsigned long long)parcalls[i].serialized,
                  (unsigned long long)parcalls[i].critical);
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace ace
