#include "stats/stats.hpp"

#include "support/strutil.hpp"

namespace ace {

void Counters::add(const Counters& o) {
  resolutions += o.resolutions;
  builtin_calls += o.builtin_calls;
  unify_steps += o.unify_steps;
  heap_cells += o.heap_cells;
  goal_nodes += o.goal_nodes;
  choicepoints += o.choicepoints;
  trail_entries += o.trail_entries;
  cp_restores += o.cp_restores;
  untrail_ops += o.untrail_ops;
  backtrack_frames += o.backtrack_frames;
  parcall_frames += o.parcall_frames;
  parcall_slots += o.parcall_slots;
  input_markers += o.input_markers;
  end_markers += o.end_markers;
  slot_completions += o.slot_completions;
  slot_failures += o.slot_failures;
  outside_backtracks += o.outside_backtracks;
  recomputations += o.recomputations;
  opt_checks += o.opt_checks;
  lpco_merges += o.lpco_merges;
  shallow_skipped_markers += o.shallow_skipped_markers;
  pdo_merges += o.pdo_merges;
  lao_reuses += o.lao_reuses;
  static_elisions += o.static_elisions;
  cge_checks += o.cge_checks;
  fetches += o.fetches;
  steals += o.steals;
  idle_ticks += o.idle_ticks;
  copied_cells += o.copied_cells;
  sharing_sessions += o.sharing_sessions;
  public_node_takes += o.public_node_takes;
  tree_descents += o.tree_descents;
  table_hits += o.table_hits;
  table_misses += o.table_misses;
  table_inserts += o.table_inserts;
  table_suspends += o.table_suspends;
  table_resumes += o.table_resumes;
  table_completions += o.table_completions;
  solutions += o.solutions;
  ctrl_words_hw += o.ctrl_words_hw;  // sum of per-agent high-water marks
  ctrl_words += o.ctrl_words;
}

std::string Counters::summary() const {
  std::string out;
  out += strf("resolutions=%llu builtins=%llu unify_steps=%llu\n",
              (unsigned long long)resolutions, (unsigned long long)builtin_calls,
              (unsigned long long)unify_steps);
  out += strf("heap_cells=%llu goal_nodes=%llu trail_entries=%llu\n",
              (unsigned long long)heap_cells, (unsigned long long)goal_nodes,
              (unsigned long long)trail_entries);
  out += strf("choicepoints=%llu cp_restores=%llu untrail=%llu bt_frames=%llu\n",
              (unsigned long long)choicepoints, (unsigned long long)cp_restores,
              (unsigned long long)untrail_ops,
              (unsigned long long)backtrack_frames);
  out += strf(
      "parcalls=%llu slots=%llu in_markers=%llu end_markers=%llu\n",
      (unsigned long long)parcall_frames, (unsigned long long)parcall_slots,
      (unsigned long long)input_markers, (unsigned long long)end_markers);
  out += strf(
      "lpco_merges=%llu shallow_skipped=%llu pdo_merges=%llu lao_reuses=%llu\n",
      (unsigned long long)lpco_merges,
      (unsigned long long)shallow_skipped_markers,
      (unsigned long long)pdo_merges, (unsigned long long)lao_reuses);
  if (static_elisions > 0) {
    out += strf("static_elisions=%llu\n", (unsigned long long)static_elisions);
  }
  if (table_hits + table_misses + table_inserts > 0) {
    out += strf(
        "table_hits=%llu table_misses=%llu table_inserts=%llu "
        "table_suspends=%llu table_resumes=%llu table_completions=%llu\n",
        (unsigned long long)table_hits, (unsigned long long)table_misses,
        (unsigned long long)table_inserts,
        (unsigned long long)table_suspends,
        (unsigned long long)table_resumes,
        (unsigned long long)table_completions);
  }
  out += strf("fetches=%llu steals=%llu idle=%llu copied_cells=%llu\n",
              (unsigned long long)fetches, (unsigned long long)steals,
              (unsigned long long)idle_ticks,
              (unsigned long long)copied_cells);
  out += strf("solutions=%llu ctrl_words_hw=%llu\n",
              (unsigned long long)solutions,
              (unsigned long long)ctrl_words_hw);
  return out;
}

std::string Counters::to_json() const {
  std::string out = "{";
  bool first = true;
  auto put = [&](const char* key, std::uint64_t v) {
    if (!first) out += ",";
    first = false;
    out += strf("\"%s\":%llu", key, (unsigned long long)v);
  };
  put("resolutions", resolutions);
  put("builtin_calls", builtin_calls);
  put("unify_steps", unify_steps);
  put("heap_cells", heap_cells);
  put("goal_nodes", goal_nodes);
  put("choicepoints", choicepoints);
  put("trail_entries", trail_entries);
  put("cp_restores", cp_restores);
  put("untrail_ops", untrail_ops);
  put("backtrack_frames", backtrack_frames);
  put("parcall_frames", parcall_frames);
  put("parcall_slots", parcall_slots);
  put("input_markers", input_markers);
  put("end_markers", end_markers);
  put("slot_completions", slot_completions);
  put("slot_failures", slot_failures);
  put("outside_backtracks", outside_backtracks);
  put("recomputations", recomputations);
  put("opt_checks", opt_checks);
  put("lpco_merges", lpco_merges);
  put("shallow_skipped_markers", shallow_skipped_markers);
  put("pdo_merges", pdo_merges);
  put("lao_reuses", lao_reuses);
  if (static_elisions > 0) put("static_elisions", static_elisions);
  if (cge_checks > 0) put("cge_checks", cge_checks);
  put("fetches", fetches);
  put("steals", steals);
  put("idle_ticks", idle_ticks);
  put("copied_cells", copied_cells);
  put("sharing_sessions", sharing_sessions);
  put("public_node_takes", public_node_takes);
  put("tree_descents", tree_descents);
  if (table_hits + table_misses > 0) {
    put("table_hits", table_hits);
    put("table_misses", table_misses);
    put("table_inserts", table_inserts);
    put("table_suspends", table_suspends);
    put("table_resumes", table_resumes);
    put("table_completions", table_completions);
  }
  put("solutions", solutions);
  put("ctrl_words_hw", ctrl_words_hw);
  out += "}";
  return out;
}

}  // namespace ace
