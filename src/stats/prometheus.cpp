#include "stats/prometheus.hpp"

#include "support/strutil.hpp"

namespace ace {

namespace {

void put_counter(std::string& out, const char* name, const char* help,
                 std::uint64_t v) {
  out += strf("# HELP %s %s\n# TYPE %s counter\n%s %llu\n", name, help, name,
              name, (unsigned long long)v);
}

void put_gauge(std::string& out, const char* name, const char* help,
               std::uint64_t v) {
  out += strf("# HELP %s %s\n# TYPE %s gauge\n%s %llu\n", name, help, name,
              name, (unsigned long long)v);
}

// Renders a log2 LatencyHistogram snapshot as a Prometheus histogram:
// cumulative buckets with le = the bucket upper bound in microseconds.
void put_histogram(std::string& out, const char* name, const char* help,
                   const LatencyHistogram::Snapshot& h) {
  out += strf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cum += h.buckets[i];
    if (i + 1 >= LatencyHistogram::kBuckets) break;  // top bucket -> +Inf
    out += strf("%s_bucket{le=\"%llu\"} %llu\n", name,
                (unsigned long long)((std::uint64_t{1} << (i + 1)) - 1),
                (unsigned long long)cum);
  }
  out += strf("%s_bucket{le=\"+Inf\"} %llu\n", name,
              (unsigned long long)h.count);
  out += strf("%s_sum %llu\n", name, (unsigned long long)h.sum_us);
  out += strf("%s_count %llu\n", name, (unsigned long long)h.count);
}

}  // namespace

std::string prometheus_text(const ServeMetricsSnapshot& s) {
  std::string out;
  put_counter(out, "ace_serve_submitted_total", "Queries submitted",
              s.submitted);
  put_counter(out, "ace_serve_admitted_total", "Queries admitted",
              s.admitted);
  put_counter(out, "ace_serve_rejected_total",
              "Queries shed at admission (overload)", s.rejected);
  put_counter(out, "ace_serve_completed_total",
              "Queries that ran to completion", s.completed);
  put_counter(out, "ace_serve_cancelled_total",
              "Queries stopped by external cancel", s.cancelled);
  put_counter(out, "ace_serve_deadline_expired_total",
              "Queries stopped by deadline", s.deadline_expired);
  put_counter(out, "ace_serve_errors_total", "Queries that errored",
              s.errors);
  put_counter(out, "ace_serve_pool_hits_total",
              "Engine checkouts served by a warm pooled session",
              s.pool_hits);
  put_counter(out, "ace_serve_pool_misses_total",
              "Engine checkouts that constructed a session", s.pool_misses);
  put_gauge(out, "ace_serve_queue_depth", "Instantaneous admission-queue depth",
            s.queue_depth);
  put_gauge(out, "ace_serve_queue_peak", "Admission-queue high-water mark",
            s.queue_peak);
  if (s.lint_ran) {
    put_gauge(out, "ace_lint_warnings", "Load-time lint warnings",
              s.lint_warnings);
    put_gauge(out, "ace_lint_errors", "Load-time lint errors", s.lint_errors);
  }
  if (s.cge_checks > 0) {
    put_counter(out, "ace_cge_checks_total",
                "CGE guard evaluations (ground/indep checks) in served "
                "queries",
                s.cge_checks);
  }
  if (s.tables_present) {
    put_counter(out, "ace_table_hits_total",
                "Tabled calls answered from a completed memo table",
                s.table_hits);
    put_counter(out, "ace_table_misses_total",
                "Tabled calls that had to evaluate their subgoal",
                s.table_misses);
    put_counter(out, "ace_table_inserts_total",
                "Completed memo tables published to the shared cache",
                s.table_inserts);
    put_counter(out, "ace_table_invalidations_total",
                "Memo tables dropped because a supporting predicate changed",
                s.table_invalidations);
    put_gauge(out, "ace_table_entries",
              "Live completed memo tables in the shared cache",
              s.table_entries);
    put_gauge(out, "ace_table_bytes",
              "Approximate resident bytes of the shared memo-table cache",
              s.table_bytes);
  }
  if (s.cache_present) {
    put_counter(out, "ace_result_cache_hits_total",
                "Served queries answered from the result cache",
                s.cache_hits);
    put_counter(out, "ace_result_cache_misses_total",
                "Cacheable queries that had to run an engine",
                s.cache_misses);
    put_counter(out, "ace_result_cache_inserts_total",
                "Completed query results published to the cache",
                s.cache_inserts);
    put_counter(out, "ace_result_cache_invalidations_total",
                "Cached results dropped because a supporting predicate "
                "changed",
                s.cache_invalidations);
    put_counter(out, "ace_result_cache_evictions_total",
                "Cached results dropped by LRU capacity pressure",
                s.cache_evictions);
    put_counter(out, "ace_result_cache_bypasses_total",
                "Requests routed around the cache (effectful or bypass "
                "mode)",
                s.cache_bypasses);
    put_gauge(out, "ace_result_cache_entries",
              "Live entries in the result cache", s.cache_entries);
    put_gauge(out, "ace_result_cache_bytes",
              "Approximate resident bytes of the result cache",
              s.cache_bytes);
    put_gauge(out, "ace_result_cache_capacity",
              "Configured result-cache entry bound", s.cache_capacity);
  }
  if (s.shards.size() > 1) {
    // Per-shard families: one HELP/TYPE header each, one labeled sample
    // per shard.
    struct ShardField {
      const char* name;
      const char* type;
      const char* help;
      std::uint64_t ServeMetricsSnapshot::ShardSnapshot::* field;
    };
    static const ShardField kFields[] = {
        {"ace_shard_queue_depth", "gauge",
         "Instantaneous admission-queue depth per shard",
         &ServeMetricsSnapshot::ShardSnapshot::queue_depth},
        {"ace_shard_queue_peak", "gauge",
         "Admission-queue high-water mark per shard",
         &ServeMetricsSnapshot::ShardSnapshot::queue_peak},
        {"ace_shard_pool_idle_sessions", "gauge",
         "Warm engine sessions parked in the shard's pool",
         &ServeMetricsSnapshot::ShardSnapshot::pool_idle},
        {"ace_shard_submitted_total", "counter",
         "Queries admitted to the shard",
         &ServeMetricsSnapshot::ShardSnapshot::submitted},
        {"ace_shard_completed_total", "counter",
         "Responses sent by the shard",
         &ServeMetricsSnapshot::ShardSnapshot::completed},
        {"ace_shard_pool_hits_total", "counter",
         "Shard engine checkouts served by a warm pooled session",
         &ServeMetricsSnapshot::ShardSnapshot::pool_hits},
        {"ace_shard_pool_misses_total", "counter",
         "Shard engine checkouts that constructed a session",
         &ServeMetricsSnapshot::ShardSnapshot::pool_misses},
    };
    for (const ShardField& f : kFields) {
      out += strf("# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name,
                  f.type);
      for (std::size_t i = 0; i < s.shards.size(); ++i) {
        out += strf("%s{shard=\"%llu\"} %llu\n", f.name,
                    (unsigned long long)i,
                    (unsigned long long)(s.shards[i].*(f.field)));
      }
    }
  }
  if (s.runtime_present) {
    put_gauge(out, "ace_pool_idle_sessions",
              "Warm engine sessions parked in the pool", s.pool_idle);
    put_gauge(out, "ace_pool_capacity", "Configured engine-pool bound",
              s.pool_capacity);
    put_gauge(out, "ace_serve_dispatch_threads",
              "Configured dispatch concurrency", s.dispatch_threads);
    put_gauge(out, "ace_serve_active_queries",
              "Queries currently being served", s.active_queries);
    put_gauge(out, "ace_serve_inflight_queries",
              "Admitted queries not yet responded", s.inflight);
    put_counter(out, "ace_serve_watchdog_fired_total",
                "Stuck-query watchdog flight-recorder dumps",
                s.watchdog_fired);
    put_gauge(out, "ace_db_epoch", "Current clause-database global epoch",
              s.db_epoch);
    put_gauge(out, "ace_db_epoch_lag",
              "Global epoch minus the oldest pinned epoch", s.db_epoch_lag);
    put_gauge(out, "ace_db_limbo_depth",
              "Retired index versions awaiting epoch reclamation",
              s.db_limbo_depth);
    put_gauge(out, "ace_db_pinned_snapshots",
              "Reader snapshots currently pinning an epoch",
              s.db_pinned_snapshots);
    put_gauge(out, "ace_db_index_versions",
              "Live predicate index versions (process-wide)",
              s.db_index_versions);
    put_gauge(out, "ace_db_oldest_pin_age_ns",
              "Age of the oldest live snapshot pin (nanoseconds)",
              s.db_oldest_pin_age_ns);
    put_gauge(out, "ace_db_pin_age_highwater_ns",
              "High-water snapshot pin age observed (nanoseconds)",
              s.db_pin_age_hw_ns);
  }
  put_histogram(out, "ace_serve_latency_us",
                "Admission-to-response latency (microseconds)", s.latency);
  put_histogram(out, "ace_serve_queue_wait_us",
                "Admission-to-dispatch wait (microseconds)", s.queue_wait);

  if (s.attrib_queries > 0) {
    put_counter(out, "ace_attrib_queries_total",
                "Queries contributing cost attribution", s.attrib_queries);
    put_counter(out, "ace_attrib_makespan_total",
                "Sum of per-query virtual times (makespans)",
                s.attrib_virtual_time);
    out +=
        "# HELP ace_attrib_virtual_time_total Virtual time charged per "
        "overhead category (sum over agents and queries)\n"
        "# TYPE ace_attrib_virtual_time_total counter\n";
    for (std::size_t i = 0; i < kNumCostCats; ++i) {
      out += strf("ace_attrib_virtual_time_total{category=\"%s\"} %llu\n",
                  cost_cat_name(static_cast<CostCat>(i)),
                  (unsigned long long)s.attrib.at[i]);
    }
  }
  return out;
}

}  // namespace ace
