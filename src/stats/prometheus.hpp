// Prometheus text exposition (version 0.0.4) for the serving metrics and
// the virtual-time attribution rollup.
//
// prometheus_text() renders a ServeMetricsSnapshot as the body served by
// `ace_serve --metrics-port` at /metrics: admission/outcome counters, the
// engine-pool gauges, both log2 latency histograms (as native `histogram`
// types with cumulative `le` buckets), and — once queries have reported —
// one `ace_attrib_virtual_time_total{category=...}` counter per CostCat
// plus the Σ-virtual-time counter the overhead percentages are computed
// against.
#pragma once

#include <string>

#include "stats/serve_metrics.hpp"

namespace ace {

std::string prometheus_text(const ServeMetricsSnapshot& s);

}  // namespace ace
