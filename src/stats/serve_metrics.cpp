#include "stats/serve_metrics.hpp"

#include "support/strutil.hpp"

namespace ace {

namespace {

std::size_t bucket_index(std::uint64_t us) {
  std::size_t i = 0;
  while (us > 1 && i + 1 < LatencyHistogram::kBuckets) {
    us >>= 1;
    ++i;
  }
  return i;
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Saturating accumulate: a handful of microseconds::max() samples must
// degrade the running sum to "very large", never wrap it back to small.
void atomic_saturating_add(std::atomic<std::uint64_t>& slot,
                           std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (true) {
    std::uint64_t next = cur + v < cur ? ~std::uint64_t{0} : cur + v;
    if (slot.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

void LatencyHistogram::record(std::chrono::microseconds us) {
  std::uint64_t v =
      us.count() < 0 ? 0 : static_cast<std::uint64_t>(us.count());
  // bucket_index clamps anything beyond 2^39us into the top bucket.
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_saturating_add(sum_us_, v);
  atomic_max(max_us_, v);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_us = sum_us_.load(std::memory_order_relaxed);
  s.max_us = max_us_.load(std::memory_order_relaxed);
  std::size_t last = 0;
  std::array<std::uint64_t, kBuckets> raw{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    raw[i] = buckets_[i].load(std::memory_order_relaxed);
    if (raw[i] != 0) last = i + 1;
  }
  s.buckets.assign(raw.begin(), raw.begin() + last);
  return s;
}

std::uint64_t LatencyHistogram::Snapshot::percentile_us(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  std::uint64_t rank = static_cast<std::uint64_t>(p * double(count));
  if (rank >= count) rank = count - 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // The top bucket is a clamp: its samples can be arbitrarily large,
      // so its honest upper bound is the observed max, not 2^kBuckets-1.
      if (i + 1 >= LatencyHistogram::kBuckets) return max_us;
      return (std::uint64_t{1} << (i + 1)) - 1;
    }
  }
  return max_us;
}

void ServeMetrics::add_attrib(const AttribBreakdown& a,
                              std::uint64_t virtual_time) {
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    if (a.at[i] != 0) {
      atomic_saturating_add(attrib_[i], a.at[i]);
    }
  }
  attrib_queries_.fetch_add(1, std::memory_order_relaxed);
  atomic_saturating_add(attrib_virtual_time_, virtual_time);
}

void ServeMetrics::set_queue_depth(std::uint64_t depth) {
  // Single CAS-published word: a reader loading queue_dp_ always sees a
  // (depth, peak) pair that coexisted, so depth > peak is unobservable.
  const std::uint64_t d = depth & 0xFFFFFFFFull;
  std::uint64_t cur = queue_dp_.load(std::memory_order_relaxed);
  while (true) {
    std::uint64_t peak = cur >> 32;
    if (d > peak) peak = d;
    std::uint64_t next = (peak << 32) | d;
    if (queue_dp_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

ServeMetricsSnapshot ServeMetrics::snapshot() const {
  ServeMetricsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  s.pool_misses = pool_misses_.load(std::memory_order_relaxed);
  const std::uint64_t dp = queue_dp_.load(std::memory_order_relaxed);
  s.queue_depth = dp & 0xFFFFFFFFull;
  s.queue_peak = dp >> 32;
  s.cge_checks = cge_checks_.load(std::memory_order_relaxed);
  s.lint_ran = lint_ran_.load(std::memory_order_relaxed);
  s.lint_warnings = lint_warnings_.load(std::memory_order_relaxed);
  s.lint_errors = lint_errors_.load(std::memory_order_relaxed);
  s.latency = latency_.snapshot();
  s.queue_wait = queue_wait_.snapshot();
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    s.attrib.at[i] = attrib_[i].load(std::memory_order_relaxed);
  }
  s.attrib_queries = attrib_queries_.load(std::memory_order_relaxed);
  s.attrib_virtual_time =
      attrib_virtual_time_.load(std::memory_order_relaxed);
  return s;
}

namespace {

std::string histogram_json(const LatencyHistogram::Snapshot& h) {
  std::string buckets = "[";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i != 0) buckets += ",";
    buckets += strf("%llu", (unsigned long long)h.buckets[i]);
  }
  buckets += "]";
  return strf(
      "{\"count\":%llu,\"mean_us\":%.1f,\"p50_us\":%llu,\"p90_us\":%llu,"
      "\"p99_us\":%llu,\"max_us\":%llu,\"log2_buckets\":%s}",
      (unsigned long long)h.count, h.mean_us(),
      (unsigned long long)h.percentile_us(0.50),
      (unsigned long long)h.percentile_us(0.90),
      (unsigned long long)h.percentile_us(0.99),
      (unsigned long long)h.max_us, buckets.c_str());
}

}  // namespace

std::string ServeMetricsSnapshot::to_json() const {
  std::string lint;
  if (lint_ran) {
    lint = strf(",\"lint_warnings\":%llu,\"lint_errors\":%llu",
                (unsigned long long)lint_warnings,
                (unsigned long long)lint_errors);
  }
  // Attribution rollup: present only once a query has reported it, so
  // pre-existing consumers of the metrics object see an unchanged shape.
  if (attrib_queries > 0) {
    lint += strf(",\"attrib_queries\":%llu,\"attrib_virtual_time\":%llu",
                 (unsigned long long)attrib_queries,
                 (unsigned long long)attrib_virtual_time);
    lint += ",\"attrib\":" + attrib.to_json();
  }
  // CGE guard rollup: present once a CGE-annotated program has actually
  // evaluated a guard (same traffic-gated contract as the blocks above).
  if (cge_checks > 0) {
    lint += strf(",\"cge_checks\":%llu", (unsigned long long)cge_checks);
  }
  // Memo-table cache rollup: same present-only-with-traffic contract.
  if (tables_present) {
    lint += strf(
        ",\"table_hits\":%llu,\"table_misses\":%llu,\"table_inserts\":%llu,"
        "\"table_invalidations\":%llu,\"table_entries\":%llu,"
        "\"table_bytes\":%llu",
        (unsigned long long)table_hits, (unsigned long long)table_misses,
        (unsigned long long)table_inserts,
        (unsigned long long)table_invalidations,
        (unsigned long long)table_entries, (unsigned long long)table_bytes);
  }
  // Result-cache rollup: present only when a cache is configured.
  if (cache_present) {
    lint += strf(
        ",\"cache_hits\":%llu,\"cache_misses\":%llu,"
        "\"cache_hit_rate\":%.3f,\"cache_inserts\":%llu,"
        "\"cache_invalidations\":%llu,\"cache_evictions\":%llu,"
        "\"cache_bypasses\":%llu,\"cache_entries\":%llu,"
        "\"cache_bytes\":%llu,\"cache_capacity\":%llu",
        (unsigned long long)cache_hits, (unsigned long long)cache_misses,
        cache_hit_rate(), (unsigned long long)cache_inserts,
        (unsigned long long)cache_invalidations,
        (unsigned long long)cache_evictions,
        (unsigned long long)cache_bypasses,
        (unsigned long long)cache_entries, (unsigned long long)cache_bytes,
        (unsigned long long)cache_capacity);
  }
  // Per-shard breakdown: rendered only for multi-shard topologies so the
  // default shards=1 object keeps its historical shape.
  if (shards.size() > 1) {
    lint += ",\"shards\":[";
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const ShardSnapshot& sh = shards[i];
      if (i != 0) lint += ",";
      lint += strf(
          "{\"queue_depth\":%llu,\"queue_peak\":%llu,\"pool_idle\":%llu,"
          "\"submitted\":%llu,\"completed\":%llu,\"pool_hits\":%llu,"
          "\"pool_misses\":%llu}",
          (unsigned long long)sh.queue_depth,
          (unsigned long long)sh.queue_peak,
          (unsigned long long)sh.pool_idle, (unsigned long long)sh.submitted,
          (unsigned long long)sh.completed,
          (unsigned long long)sh.pool_hits,
          (unsigned long long)sh.pool_misses);
    }
    lint += "]";
  }
  // Runtime health gauges: only QueryService::metrics_snapshot() fills
  // these, so the plain ServeMetrics::snapshot() JSON shape is unchanged.
  if (runtime_present) {
    lint += strf(
        ",\"runtime\":{\"pool_idle\":%llu,\"pool_capacity\":%llu,"
        "\"dispatch_threads\":%llu,\"active_queries\":%llu,"
        "\"inflight\":%llu,\"watchdog_fired\":%llu,"
        "\"db_epoch\":%llu,\"db_epoch_lag\":%llu,\"db_limbo_depth\":%llu,"
        "\"db_pinned_snapshots\":%llu,\"db_index_versions\":%llu,"
        "\"db_oldest_pin_age_ns\":%llu,\"db_pin_age_hw_ns\":%llu}",
        (unsigned long long)pool_idle, (unsigned long long)pool_capacity,
        (unsigned long long)dispatch_threads,
        (unsigned long long)active_queries, (unsigned long long)inflight,
        (unsigned long long)watchdog_fired, (unsigned long long)db_epoch,
        (unsigned long long)db_epoch_lag,
        (unsigned long long)db_limbo_depth,
        (unsigned long long)db_pinned_snapshots,
        (unsigned long long)db_index_versions,
        (unsigned long long)db_oldest_pin_age_ns,
        (unsigned long long)db_pin_age_hw_ns);
  }
  return strf(
      "{\"submitted\":%llu,\"admitted\":%llu,\"rejected\":%llu,"
      "\"completed\":%llu,\"cancelled\":%llu,\"deadline_expired\":%llu,"
      "\"errors\":%llu,\"pool_hits\":%llu,\"pool_misses\":%llu,"
      "\"pool_hit_rate\":%.3f,\"queue_depth\":%llu,\"queue_peak\":%llu,"
      "\"latency\":%s,\"queue_wait\":%s%s}",
      (unsigned long long)submitted, (unsigned long long)admitted,
      (unsigned long long)rejected, (unsigned long long)completed,
      (unsigned long long)cancelled, (unsigned long long)deadline_expired,
      (unsigned long long)errors, (unsigned long long)pool_hits,
      (unsigned long long)pool_misses, pool_hit_rate(),
      (unsigned long long)queue_depth, (unsigned long long)queue_peak,
      histogram_json(latency).c_str(), histogram_json(queue_wait).c_str(),
      lint.c_str());
}

}  // namespace ace
