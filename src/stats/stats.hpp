// Operation counters.
//
// Every overhead-relevant runtime event is counted per agent; the simulator
// converts counts to virtual time through the CostModel, and the benchmark
// harness reports the raw counts (markers allocated, choice points created,
// frames traversed on backtracking, ...) that the paper's optimizations act
// on.
#pragma once

#include <cstdint>
#include <string>

namespace ace {

struct Counters {
  // Forward execution.
  std::uint64_t resolutions = 0;      // user predicate calls dispatched
  std::uint64_t builtin_calls = 0;
  std::uint64_t unify_steps = 0;      // cell pairs visited by unify
  std::uint64_t heap_cells = 0;       // cells allocated on the heap
  std::uint64_t goal_nodes = 0;       // continuation nodes allocated
  std::uint64_t choicepoints = 0;     // choice points allocated
  std::uint64_t trail_entries = 0;

  // Backtracking.
  std::uint64_t cp_restores = 0;      // alternatives retried
  std::uint64_t untrail_ops = 0;
  std::uint64_t backtrack_frames = 0; // frames walked/killed during unwind

  // And-parallel machinery.
  std::uint64_t parcall_frames = 0;
  std::uint64_t parcall_slots = 0;
  std::uint64_t input_markers = 0;
  std::uint64_t end_markers = 0;
  std::uint64_t slot_completions = 0;
  std::uint64_t slot_failures = 0;
  std::uint64_t outside_backtracks = 0;  // re-entries into completed parcalls
  std::uint64_t recomputations = 0;      // slots re-executed after re-entry

  // Optimizations.
  std::uint64_t opt_checks = 0;             // runtime applicability tests
  std::uint64_t lpco_merges = 0;            // parcall frames flattened away
  std::uint64_t shallow_skipped_markers = 0;
  std::uint64_t pdo_merges = 0;
  std::uint64_t lao_reuses = 0;             // choice points reused in place
  // Runtime applicability tests skipped because the static analyzer proved
  // the property at load time (--static-facts). Reported only when nonzero
  // so runs without the flag stay bit-identical.
  std::uint64_t static_elisions = 0;
  // CGE guard executions (ground/1, indep/2). Reported only when nonzero
  // so programs without conditional annotations keep their JSON shape.
  std::uint64_t cge_checks = 0;

  // Scheduling.
  std::uint64_t fetches = 0;      // local work-pool fetches
  std::uint64_t steals = 0;       // remote fetches
  std::uint64_t idle_ticks = 0;

  // Or-parallel machinery.
  std::uint64_t copied_cells = 0;       // MUSE stack-copy traffic (words)
  std::uint64_t sharing_sessions = 0;
  std::uint64_t public_node_takes = 0;  // alternatives taken from shared CPs
  std::uint64_t tree_descents = 0;      // public-node scan steps while idle

  // Tabling (all zero unless the query touched a tabled predicate; the
  // table_* fields are reported only when nonzero so untabled runs keep
  // their historical JSON shape). Hits/misses here are the *worker-side*
  // view (completed-table consumptions vs generator starts); the
  // cross-query cache hit rate lives in tab::TableSpace's own counters.
  std::uint64_t table_hits = 0;        // calls answered from a completed table
  std::uint64_t table_misses = 0;      // calls that had to run a generator
  std::uint64_t table_inserts = 0;     // distinct answers recorded
  std::uint64_t table_suspends = 0;    // consumer/generator suspensions
  std::uint64_t table_resumes = 0;     // fixpoint re-runs + resumed consumers
  std::uint64_t table_completions = 0; // subgoals proven complete

  // Results.
  std::uint64_t solutions = 0;

  // Memory high-water marks, in nominal words (see nominal sizes below).
  std::uint64_t ctrl_words_hw = 0;
  std::uint64_t ctrl_words = 0;

  void add(const Counters& o);
  std::string summary() const;
  // Compact JSON object (every counter, field names as keys) — the
  // per-query stats block of QueryResult::to_json().
  std::string to_json() const;
};

// Nominal data-structure sizes in words, for the paper's memory-consumption
// claims (actual C++ struct sizes are an implementation artifact).
constexpr std::uint64_t kWordsChoicePoint = 10;
constexpr std::uint64_t kWordsParcallFrame = 8;
constexpr std::uint64_t kWordsParcallSlot = 4;
constexpr std::uint64_t kWordsInputMarker = 6;
constexpr std::uint64_t kWordsEndMarker = 6;

}  // namespace ace
