// Virtual-time attribution.
//
// The paper's argument is an accounting claim: the optimization schemas
// (flattening, procrastination, sequentialization) remove *specific*
// overheads — parcall frames, markers, choice-point publication, runtime
// trigger checks. This module makes the accounting visible: every charge an
// agent makes carries a CostCat (sim/cost_model.hpp), the per-category sums
// exactly partition each agent's virtual clock (conservation invariant), and
// the breakdowns roll up per agent, per predicate and per schema.
//
// Attribution is charged at the charge sites themselves and is always on —
// it is one array add per charge and, because the charge *amounts* are
// untouched, runs with and without the reporting flag are bit-identical in
// virtual time. Only the per-predicate map (heavier: hashing) is gated
// behind WorkerOptions::attrib / EngineConfig::attrib.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"

namespace ace {

struct Counters;

// Per-category virtual-time totals. `at[cat]` is the time charged to that
// category; the conservation invariant is total() == the owning agent's
// virtual clock.
struct AttribBreakdown {
  std::array<std::uint64_t, kNumCostCats> at{};

  std::uint64_t& operator[](CostCat c) {
    return at[static_cast<std::size_t>(c)];
  }
  std::uint64_t operator[](CostCat c) const {
    return at[static_cast<std::size_t>(c)];
  }

  // Sum over all categories (== virtual clock of the owning agent; for
  // machine-level rollups, == the sum of the agents' clocks, NOT the
  // makespan).
  std::uint64_t total() const;
  // Parallel-overhead categories only (parcall, marker, publish, sched,
  // opt_check): time an ideal sequential execution would not pay.
  std::uint64_t overhead() const;
  // Work categories (unify, clause lookup, backtrack, builtin, user work):
  // the sequential-equivalent fraction.
  std::uint64_t work() const;
  std::uint64_t idle() const { return (*this)[CostCat::kIdle]; }

  void add(const AttribBreakdown& o);
  void clear() { at.fill(0); }

  // Compact JSON object {"unify":N,...,"opt_check":N} (all categories, fixed
  // order).
  std::string to_json() const;
  // Human-readable one-category-per-line table, percentages of total().
  std::string table(const std::string& indent = "  ") const;
  // Category names with the largest times first (ties: category order);
  // zero-time categories are skipped. Used by the slow-query log's "top
  // overhead" annotation.
  std::vector<CostCat> top_categories(std::size_t k) const;
};

// Per-predicate attribution row ("pred" is "name/arity", or a pseudo-entry
// like "<query>" for charges made before the first user dispatch).
struct PredAttrib {
  std::string pred;
  AttribBreakdown a;
};

// Estimated virtual time each optimization schema saved in a run, derived
// from the trigger counters and the cost model — the paper's Tables 2-5
// columns, recomputed from first principles per run:
//   flattening        (LPCO + LAO): merged parcall frames avoid the frame +
//                     its teardown; reused choice points pay lao_update
//                     instead of a fresh choicepoint.
//   procrastination   (SHALLOW): each skipped marker pair avoids an input
//                     and an end marker allocation.
//   sequentialization (PDO): each merge avoids one end+input marker pair at
//                     a slot boundary.
//   static elision    (--static-facts): each elision avoids one opt_check.
struct SchemaSavings {
  std::uint64_t flattening = 0;
  std::uint64_t procrastination = 0;
  std::uint64_t sequentialization = 0;
  std::uint64_t static_elision = 0;

  std::uint64_t total() const {
    return flattening + procrastination + sequentialization + static_elision;
  }
  std::string to_json() const;
};

SchemaSavings schema_savings(const Counters& stats, const CostModel& costs);

// Collapsed-stack (flamegraph) rendering: one line per non-zero
// (agent, predicate, category) with the virtual time as the sample count,
// e.g. "agent0;qsort/2;unify 1234". When per-predicate rows are absent the
// predicate level is omitted. Feed to flamegraph.pl / speedscope / inferno.
std::string collapsed_stacks(
    const std::vector<AttribBreakdown>& per_agent,
    const std::vector<std::vector<PredAttrib>>& per_agent_preds);

}  // namespace ace
