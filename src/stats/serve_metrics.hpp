// Serving-layer metrics: admission/outcome counters, queue gauges,
// engine-pool reuse accounting, and latency histograms.
//
// All mutators are lock-free atomics so the QueryService's dispatch threads
// can record without contending; snapshot() produces a consistent-enough
// view for reporting (counters are monotone; the gauge is instantaneous).
// The JSON renderer is the machine-readable surface that ace_serve
// --metrics and bench_serve emit.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/attrib.hpp"

namespace ace {

// Lock-free base-2 exponential histogram over microseconds: bucket i counts
// samples in [2^i, 2^(i+1)) us (bucket 0 also takes 0us). Percentiles are
// reported as the upper bound of the containing bucket — coarse but stable,
// which is what a serving dashboard wants.
//
// Hardened against pathological inputs: all counts are 64-bit, durations
// beyond the top bucket's range are clamped into the top bucket (whose
// percentile upper bound reports the observed max instead of a fictitious
// 2^40us), negative durations count as zero, and the running sum saturates
// at UINT64_MAX instead of wrapping.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;  // 2^39 us ~ 6.4 days

  void record(std::chrono::microseconds us);

  struct Snapshot {
    std::vector<std::uint64_t> buckets;  // trimmed at the last nonzero
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t max_us = 0;

    double mean_us() const {
      return count == 0 ? 0.0 : double(sum_us) / double(count);
    }
    // Upper bound of the bucket containing the p-quantile (p in [0,1]).
    std::uint64_t percentile_us(double p) const;
  };
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

struct ServeMetricsSnapshot {
  // Admission control.
  std::uint64_t submitted = 0;   // submit() calls
  std::uint64_t admitted = 0;    // accepted into the queue
  std::uint64_t rejected = 0;    // bounced with overload (queue full/stopped)
  // Outcomes of admitted queries.
  std::uint64_t completed = 0;         // ran to completion / solution cap
  std::uint64_t cancelled = 0;         // stopped by external cancel
  std::uint64_t deadline_expired = 0;  // stopped by deadline (incl. in-queue)
  std::uint64_t errors = 0;            // engine/parse errors
  // Engine pool.
  std::uint64_t pool_hits = 0;    // checkout served by a warm session
  std::uint64_t pool_misses = 0;  // checkout had to construct a session
  // Queue gauges. Taken from one packed atomic, so depth <= peak holds in
  // every snapshot (a scrape can never see a fresh depth with a stale peak).
  std::uint64_t queue_depth = 0;  // instantaneous
  std::uint64_t queue_peak = 0;   // high-water mark
  // Engine-side CGE guard evaluations (ground/indep checks) accumulated
  // over served queries; zero until a CGE-annotated program runs.
  std::uint64_t cge_checks = 0;

  LatencyHistogram::Snapshot latency;     // admission -> response
  LatencyHistogram::Snapshot queue_wait;  // admission -> dispatch

  // Virtual-time attribution accumulated over completed queries (sum of
  // each query's per-category breakdown) — the serving-side rollup of the
  // engine cost accounting. attrib_queries counts contributing queries;
  // both are zero when the engines never reported attribution.
  AttribBreakdown attrib;
  std::uint64_t attrib_queries = 0;
  std::uint64_t attrib_virtual_time = 0;  // Σ per-query virtual times

  // Load-time lint results (--analyze): present in to_json() only when a
  // lint actually ran, so existing consumers see an unchanged object.
  bool lint_ran = false;
  std::uint64_t lint_warnings = 0;
  std::uint64_t lint_errors = 0;

  // Shared memo-table cache counters (src/tab/). Filled by
  // QueryService::metrics_snapshot() from the service-wide TableSpace;
  // present in to_json() only once the cache has seen traffic, so served
  // programs without table directives keep the pre-tabling object shape.
  bool tables_present = false;
  std::uint64_t table_hits = 0;           // completed-table cache hits
  std::uint64_t table_misses = 0;         // calls that had to evaluate
  std::uint64_t table_inserts = 0;        // completed tables published
  std::uint64_t table_invalidations = 0;  // tables dropped by assert/retract
  std::uint64_t table_entries = 0;        // gauge: live completed tables
  std::uint64_t table_bytes = 0;          // gauge: approx. cached bytes

  // Whole-query result cache counters (serve/result_cache.hpp). Filled by
  // QueryService::metrics_snapshot() when a cache is configured
  // (result_cache_capacity > 0); absent from to_json() otherwise, so
  // cache-off deployments keep the pre-cache object shape.
  bool cache_present = false;
  std::uint64_t cache_hits = 0;           // served without an engine
  std::uint64_t cache_misses = 0;         // cacheable but had to run
  std::uint64_t cache_inserts = 0;        // completed results published
  std::uint64_t cache_invalidations = 0;  // entries dropped by assert/retract
  std::uint64_t cache_evictions = 0;      // entries dropped by LRU pressure
  std::uint64_t cache_bypasses = 0;       // effectful / bypass-mode requests
  std::uint64_t cache_entries = 0;        // gauge: live entries
  std::uint64_t cache_bytes = 0;          // gauge: approx. resident bytes
  std::uint64_t cache_capacity = 0;       // configured entry bound

  // Per-shard gauges/counters, one element per shard in routing order.
  // Filled by QueryService::metrics_snapshot(); rendered in to_json() only
  // for multi-shard topologies so the default shards=1 JSON is unchanged.
  struct ShardSnapshot {
    std::uint64_t queue_depth = 0;
    std::uint64_t queue_peak = 0;
    std::uint64_t pool_idle = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
  };
  std::vector<ShardSnapshot> shards;

  // Runtime health gauges. Filled by QueryService::metrics_snapshot()
  // (the service is the only holder of the pool/db/watchdog state); a bare
  // ServeMetrics::snapshot() leaves the block absent so the JSON shape is
  // unchanged for unit-level consumers.
  bool runtime_present = false;
  std::uint64_t pool_idle = 0;         // warm sessions parked in the pool
  std::uint64_t pool_capacity = 0;     // configured pool bound
  std::uint64_t dispatch_threads = 0;  // configured dispatch concurrency
  std::uint64_t active_queries = 0;    // queries inside serve_one right now
  std::uint64_t inflight = 0;          // admitted, not yet responded
  std::uint64_t watchdog_fired = 0;    // flight-recorder dumps taken
  // db::Database epoch/RCU health (see db::Database::HealthStats).
  std::uint64_t db_epoch = 0;
  std::uint64_t db_epoch_lag = 0;        // epoch - min pinned epoch
  std::uint64_t db_limbo_depth = 0;      // retired versions awaiting reclaim
  std::uint64_t db_pinned_snapshots = 0; // snapshots holding an epoch pin
  std::uint64_t db_index_versions = 0;   // live PredIndex objects
  std::uint64_t db_oldest_pin_age_ns = 0;
  std::uint64_t db_pin_age_hw_ns = 0;    // high-water observed pin age

  double pool_hit_rate() const {
    std::uint64_t total = pool_hits + pool_misses;
    return total == 0 ? 0.0 : double(pool_hits) / double(total);
  }
  // Hit rate over cacheable lookups only (bypasses excluded): the number a
  // dashboard alarms on and the bench regression gate tracks.
  double cache_hit_rate() const {
    std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : double(cache_hits) / double(total);
  }
  std::string to_json() const;
};

class ServeMetrics {
 public:
  void on_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_admitted() { admitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void on_completed() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void on_cancelled() { cancelled_.fetch_add(1, std::memory_order_relaxed); }
  void on_deadline_expired() {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_error() { errors_.fetch_add(1, std::memory_order_relaxed); }
  void on_pool_hit() { pool_hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_pool_miss() {
    pool_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void set_queue_depth(std::uint64_t depth);

  // Accumulates one served query's CGE guard evaluations.
  void add_cge_checks(std::uint64_t n) {
    if (n != 0) cge_checks_.fetch_add(n, std::memory_order_relaxed);
  }

  // Records the program's load-time lint result (see ace_serve --analyze).
  void set_lint_counts(std::uint64_t warnings, std::uint64_t errors) {
    lint_warnings_.store(warnings, std::memory_order_relaxed);
    lint_errors_.store(errors, std::memory_order_relaxed);
    lint_ran_.store(true, std::memory_order_relaxed);
  }

  void record_latency(std::chrono::microseconds us) { latency_.record(us); }
  void record_queue_wait(std::chrono::microseconds us) {
    queue_wait_.record(us);
  }

  // Accumulates one completed query's attribution breakdown and virtual
  // time into the serving rollup (lock-free per-category atomics).
  void add_attrib(const AttribBreakdown& a, std::uint64_t virtual_time);

  ServeMetricsSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> pool_hits_{0};
  std::atomic<std::uint64_t> pool_misses_{0};
  // Packed queue gauge: depth in the low 32 bits, high-water peak in the
  // high 32. One word means one load yields a coherent (depth, peak) pair.
  std::atomic<std::uint64_t> queue_dp_{0};
  std::atomic<std::uint64_t> cge_checks_{0};
  std::atomic<bool> lint_ran_{false};
  std::atomic<std::uint64_t> lint_warnings_{0};
  std::atomic<std::uint64_t> lint_errors_{0};
  LatencyHistogram latency_;
  LatencyHistogram queue_wait_;
  std::array<std::atomic<std::uint64_t>, kNumCostCats> attrib_{};
  std::atomic<std::uint64_t> attrib_queries_{0};
  std::atomic<std::uint64_t> attrib_virtual_time_{0};
};

}  // namespace ace
