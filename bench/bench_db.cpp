// bench_db: reader-scaling benchmark for the epoch-reclaimed clause
// database behind BENCH_db.json.
//
// Readers hammer the hot engine read path — snapshot refresh, predicate
// find, one PredIndex view, a first-argument bucket lookup and a clause
// touch — at 1/8/32/64 threads while a writer thread publishes
// assert/retract pairs at a 0%/1%/10% mutation mix. Every configuration
// runs twice in the same process:
//
//   engine=epochdb   the shipped path: epoch-pinned db::Snapshot per
//                    reader, refreshed before every operation (one relaxed
//                    store + seq_cst load — no lock, no shared cache-line
//                    write on the read side)
//   engine=shmtx     the pre-redesign comparator: the same reads under a
//                    per-operation std::shared_mutex shared_lock, writes
//                    under the exclusive lock (what Database::read_guard()
//                    used to cost)
//
// The paired rows quantify what the redesign buys: shared_mutex readers
// serialize on the lock word and stay ~flat as threads grow, while the
// epoch path scales with cores. Unlike the simulator benches this measures
// *wall-clock* throughput, so numbers vary run to run and across machines;
// the regression gate (scripts/check_bench_regression.py) therefore treats
// the `mops` field as a higher-is-better metric with a wide tolerance
// instead of the exact virtual-time comparison used for BENCH_attrib /
// BENCH_tab.
//
//   bench_db | bench_to_json > BENCH_db.json
//   scripts/check_bench_regression.py BENCH_db.json new.json
//
//   --smoke              tiny run for CI / TSan (threads 1,4; mixes 0,10)
//   --threads-list A,B   override the thread ladder
//   --ops N              reads per reader thread (default 30000)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "db/snapshot.hpp"
#include "parse/parser.hpp"
#include "support/strutil.hpp"
#include "support/table.hpp"

namespace {

using namespace ace;

constexpr unsigned kFacts = 64;       // p/2 facts, first-arg int keys 0..63
constexpr unsigned kWriteCap = 2000;  // max writes per configuration: a
                                      // retract tombstones rather than
                                      // compacts, so successor versions are
                                      // O(n) copies and an uncapped 10% mix
                                      // would measure vector copying, not
                                      // the read path

std::vector<unsigned> parse_threads_list(const std::string& s) {
  std::vector<unsigned> out;
  std::istringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
  }
  return out;
}

// One hot read: refresh the pin, find p/2, take one consistent view, probe
// a first-arg bucket and touch the first candidate clause. Mirrors what a
// worker step does per call. Returns a value the compiler cannot discard.
inline std::uint64_t read_once(db::Snapshot& snap, std::uint32_t psym,
                               std::uint64_t& rng) {
  rng = rng * 6364136223846793005ull + 1442695040888963407ull;
  snap.refresh();
  const Predicate* p = snap.find(psym, 2);
  if (p == nullptr) return 0;
  const PredIndex& ix = snap.view(*p);
  const IndexKey key{IndexKey::Kind::Int,
                     static_cast<std::uint64_t>((rng >> 33) % kFacts)};
  const std::vector<std::uint32_t>& cand = ix.candidates(key);
  std::uint64_t acc = cand.size();
  if (!cand.empty()) acc += ix.clause(cand[0]).head_arity;
  return acc;
}

// The same read under the legacy discipline: no snapshot, a shared lock
// held for the duration of the operation (quiescence by mutual exclusion
// with the writer's unique lock).
inline std::uint64_t read_once_shmtx(const Database& db,
                                     std::shared_mutex& mu,
                                     std::uint32_t psym, std::uint64_t& rng) {
  rng = rng * 6364136223846793005ull + 1442695040888963407ull;
  std::shared_lock<std::shared_mutex> lock(mu);
  const Predicate* p = db.find(psym, 2);
  if (p == nullptr) return 0;
  const PredIndex& ix = p->index();
  const IndexKey key{IndexKey::Kind::Int,
                     static_cast<std::uint64_t>((rng >> 33) % kFacts)};
  const std::vector<std::uint32_t>& cand = ix.candidates(key);
  std::uint64_t acc = cand.size();
  if (!cand.empty()) acc += ix.clause(cand[0]).head_arity;
  return acc;
}

struct RunResult {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double ms = 0.0;
  double mops = 0.0;  // million reads+writes per wall-clock second
};

// Runs one configuration: `threads` readers doing `ops` reads each.
// Thread 0 additionally performs one assert+retract pair on p/2 every
// `stride` reads (stride 0 = read-only), up to kWriteCap pairs — inline
// interleaving keeps the mutation mix proportional regardless of how the
// OS schedules a dedicated writer. `shmtx` selects the comparator locking
// discipline.
RunResult run_config(unsigned threads, std::uint64_t ops, std::uint64_t stride,
                     bool shmtx) {
  Database db;
  {
    std::string src;
    for (unsigned i = 0; i < kFacts; ++i)
      src += "p(" + std::to_string(i) + ", v).\n";
    db.consult(src);
  }
  const std::uint32_t psym = db.syms().intern("p");
  std::vector<TermTemplate> padds;
  padds.reserve(kFacts);
  for (unsigned i = 0; i < kFacts; ++i)
    padds.push_back(parse_term_text(db.syms(), "p(" + std::to_string(i) +
                                                   ", z)."));

  std::shared_mutex mu;
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> sink{0};
  std::uint64_t writes_done = 0;

  // One assert+retract pair: the nth add lands at ordinal kFacts + n
  // (tombstones keep earlier ordinals occupied), so the retract hits
  // exactly the clause just published.
  auto write_pair = [&](std::uint64_t n) {
    db.add_clause(padds[static_cast<unsigned>(n % kFacts)]);
    db.retract_clause(psym, 2, static_cast<std::uint32_t>(kFacts + n));
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      std::uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      std::uint64_t acc = 0;
      std::uint64_t nw = 0;
      const bool writer = t == 0 && stride > 0;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      if (shmtx) {
        for (std::uint64_t i = 0; i < ops; ++i) {
          acc += read_once_shmtx(db, mu, psym, rng);
          if (writer && (i + 1) % stride == 0 && nw < kWriteCap) {
            std::unique_lock<std::shared_mutex> lock(mu);
            write_pair(nw++);
          }
        }
      } else {
        db::Snapshot snap(db);
        for (std::uint64_t i = 0; i < ops; ++i) {
          acc += read_once(snap, psym, rng);
          if (writer && (i + 1) % stride == 0 && nw < kWriteCap) {
            // Safe point: the reads above dropped their view references.
            write_pair(nw++);
          }
        }
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
      if (writer) writes_done = nw;
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.reads = ops * threads;
  r.writes = writes_done;
  r.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double secs = r.ms / 1000.0;
  r.mops = secs > 0 ? double(r.reads + r.writes) / secs / 1e6 : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t ops = 30000;
  std::vector<unsigned> threads_list = {1, 8, 32, 64};
  std::vector<unsigned> mixes = {0, 1, 10};  // percent of reads mutated
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads-list" && i + 1 < argc) {
      threads_list = parse_threads_list(argv[++i]);
    } else if (arg == "--ops" && i + 1 < argc) {
      ops = std::stoull(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_db [--smoke] [--threads-list 1,8,32,64] "
                   "[--ops N]\n");
      return 2;
    }
  }
  if (smoke) {
    threads_list = {1, 4};
    mixes = {0, 10};
    ops = 3000;
  }
  if (threads_list.empty()) threads_list = {1, 8, 32, 64};

  std::printf("==============================================================\n");
  std::printf("Clause-database reader scaling: epoch snapshots vs "
              "shared_mutex\n");
  std::printf("Cells: Mops/s (scaling vs 1 thread). %llu reads/thread, "
              "writes capped at %u/config.\n\n",
              (unsigned long long)ops, kWriteCap);

  struct Row {
    std::string name;
    std::string engine;
    unsigned agents;
    RunResult res;
    double scaling;
  };
  std::vector<Row> rows;

  for (bool shmtx : {false, true}) {
    const char* engine = shmtx ? "shmtx" : "epochdb";
    std::vector<std::string> header{std::string("mix \\ threads (") + engine +
                                    ")"};
    for (unsigned t : threads_list) header.push_back(strf("%u", t));
    TextTable table(header);

    for (unsigned pct : mixes) {
      std::vector<std::string> cells{strf("%u%% mutation", pct)};
      double mops1 = 0.0;
      for (unsigned t : threads_list) {
        const std::uint64_t stride = pct == 0 ? 0 : 100 / pct;
        RunResult res = run_config(t, ops, stride, shmtx);
        if (mops1 == 0.0) mops1 = res.mops;
        const double scaling = mops1 > 0 ? res.mops / mops1 : 0.0;
        cells.push_back(strf("%.2f (%.2fx)", res.mops, scaling));
        rows.push_back(Row{strf("read_mix%u", pct), engine, t, res, scaling});
      }
      table.add_row(std::move(cells));
    }
    std::printf("%s\n", table.render().c_str());
  }

  for (const Row& r : rows) {
    std::printf("ATTRIB name=%s engine=%s agents=%u ops=%llu writes=%llu "
                "ms=%.1f mops=%.3f scaling=%.3f\n",
                r.name.c_str(), r.engine.c_str(), r.agents,
                (unsigned long long)r.res.reads,
                (unsigned long long)r.res.writes, r.res.ms, r.res.mops,
                r.scaling);
  }
  return 0;
}
