// Section 3.1 memory claim: "usage of control stack can be decreased by
// almost 50%" with LPCO. We report control-stack high-water marks in
// nominal words (choice points 10w, parcall frames 8w + 4w/slot, markers
// 6w), unoptimized vs optimized.
#include "bench_common.hpp"

int main() {
  using namespace ace;
  std::printf("==============================================================\n");
  std::printf("Memory — control-stack high-water marks (nominal words)\n");
  std::printf("Reproduces: IPPS'97 §3.1 claim: LPCO cuts control-stack use "
              "by up to ~50%%\n\n");

  TextTable table({"benchmark", "agents", "no LPCO", "LPCO", "reduction"});
  struct Case {
    const char* label;
    const char* workload;
  };
  for (const Case& c : {Case{"map1", "map1"}, Case{"matrix_bt", "matrix_bt"},
                        Case{"map2", "map2"}}) {
    const Workload& w = workload(c.workload);
    for (unsigned agents : {1u, 5u, 10u}) {
      RunConfig base;
      base.engine = EngineKind::Andp;
      base.agents = agents;
      RunConfig opt = base;
      opt.lpco = true;
      RunOutcome rb = run_workload(w, base);
      RunOutcome ro = run_workload(w, opt);
      double red = rb.stats.ctrl_words_hw > 0
                       ? 100.0 * (double(rb.stats.ctrl_words_hw) -
                                  double(ro.stats.ctrl_words_hw)) /
                             double(rb.stats.ctrl_words_hw)
                       : 0.0;
      table.add_row({c.label, strf("%u", agents),
                     strf("%llu", (unsigned long long)rb.stats.ctrl_words_hw),
                     strf("%llu", (unsigned long long)ro.stats.ctrl_words_hw),
                     strf("%.0f%%", red)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
