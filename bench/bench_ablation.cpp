// Ablation: per-optimization contribution matrix. Every subset of
// {LPCO, SHALLOW, PDO} on representative and-parallel workloads and LAO
// on the or-parallel ones (DESIGN.md §3).
#include "bench_common.hpp"

int main() {
  using namespace ace;
  std::printf("==============================================================\n");
  std::printf("Ablation — virtual time per optimization subset\n\n");

  {
    TextTable table({"benchmark", "agents", "none", "L", "S", "P", "LS",
                     "LP", "SP", "LSP"});
    for (const char* name : {"map1", "matrix_bt", "occur", "takeuchi"}) {
      const Workload& w = workload(name);
      for (unsigned agents : {1u, 5u, 10u}) {
        std::vector<std::string> cells{name, strf("%u", agents)};
        for (int mask = 0; mask < 8; ++mask) {
          RunConfig cfg;
          cfg.engine = EngineKind::Andp;
          cfg.agents = agents;
          cfg.lpco = mask & 1;
          cfg.shallow = mask & 2;
          cfg.pdo = mask & 4;
          RunOutcome r = run_workload(w, cfg);
          cells.push_back(strf("%.0f", double(r.virtual_time) / 1000.0));
        }
        table.add_row(std::move(cells));
      }
    }
    std::printf("And-parallel (L=LPCO, S=SHALLOW, P=PDO):\n%s\n",
                table.render().c_str());
  }

  {
    TextTable table({"benchmark", "agents", "no LAO", "LAO"});
    for (const char* name : {"members", "queens1"}) {
      const Workload& w = workload(name);
      for (unsigned agents : {1u, 4u, 10u}) {
        RunConfig off;
        off.engine = EngineKind::Orp;
        off.agents = agents;
        RunConfig on = off;
        on.lao = true;
        table.add_row(
            {name, strf("%u", agents),
             strf("%.0f", double(run_workload(w, off).virtual_time) / 1000.0),
             strf("%.0f", double(run_workload(w, on).virtual_time) / 1000.0)});
      }
    }
    std::printf("Or-parallel:\n%s\n", table.render().c_str());
  }
  return 0;
}
