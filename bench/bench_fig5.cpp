// Figure 5: speedup curves on backward execution, with/without LPCO.
// The paper's headline: map shows almost no speedup without the
// optimization and near-linear speedup with it.
#include "bench_common.hpp"

int main() {
  ace::bench::CurveSpec spec;
  spec.title = "Figure 5 — speedups on backward execution (LPCO off/on)";
  spec.paper_ref =
      "Gupta & Pontelli IPPS'97, Figure 5: Map flat without LPCO, "
      "near-linear with; Matrix Mult and Pderiv improve strongly";
  spec.rows = {
      {"map", "map1", ""},
      {"matrix", "matrix_bt", ""},
      {"pderiv", "pderiv_bt", ""},
  };
  spec.max_agents = 10;
  spec.engine = ace::EngineKind::Andp;
  spec.lpco = true;
  spec.print_speedup = true;
  ace::bench::run_paper_curves(spec);
  return 0;
}
