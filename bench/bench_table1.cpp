// Table 1: LPCO on forward execution only (modest gains).
#include "bench_common.hpp"

int main() {
  ace::bench::TableSpec spec;
  spec.title = "Table 1 — LPCO, forward execution only";
  spec.paper_ref =
      "Gupta & Pontelli IPPS'97, Table 1: savings in execution time "
      "(forward execution only), LPCO off/on";
  spec.paper_numbers =
      "  map2      1p: 7.14/6.39 (11%)  3p: 2.51/2.32 (8%)  "
      "5p: 1.99/1.48 (26%)  10p: 1.91/1.48 (23%)\n"
      "  occur(5)  1p: 3.65/3.15 (14%)  3p: 1.25/1.02 (18%)  "
      "5p: .75/.64 (15%)    10p: .43/.35 (19%)";
  spec.rows = {
      {"map2", "map2", ""},
      {"occur(5)", "occur", ""},
  };
  spec.agents = {1, 3, 5, 10};
  spec.engine = ace::EngineKind::Andp;
  spec.lpco = true;
  ace::bench::run_paper_table(spec);
  return 0;
}
