// bench_attrib: the attribution/perf-trajectory benchmark behind
// BENCH_attrib.json.
//
// Runs every corpus workload (and-parallel ones on the andp engine with all
// optimization schemas, or-parallel ones on the orp engine with LAO) at 1, 5
// and 10 agents and prints, per run:
//
//   * a human-readable table row (virtual time, relative speedup, overhead
//     and idle percentages of the agents*makespan budget), and
//   * one machine-readable `ATTRIB key=value ...` line with the full
//     per-category attribution, the schema-savings estimate and the
//     optimization trigger/elision counters.
//
// The ATTRIB lines are the wire format of the bench pipeline:
//
//   bench_attrib | bench_to_json > BENCH_attrib.json
//   scripts/check_bench_regression.py BENCH_attrib.json new.json
//
// Virtual times come from the deterministic simulator, so two builds of the
// same source produce byte-identical ATTRIB lines; any diff the regression
// gate sees is a real behavior change.
//
//   --quick      use each workload's reduced test query (CI smoke)
//   --agents-list A,B,C   override the 1,5,10 ladder
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "stats/attrib.hpp"
#include "stats/speedup.hpp"
#include "support/strutil.hpp"
#include "support/table.hpp"
#include "workloads/harness.hpp"

namespace {

using namespace ace;

std::vector<unsigned> parse_agents_list(const std::string& s) {
  std::vector<unsigned> out;
  std::istringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
  }
  return out;
}

struct RunRecord {
  std::string name;
  const char* engine;
  unsigned agents;
  std::uint64_t vt;
  double speedup;  // vs the 1-agent rung of the same workload
  SpeedupReport report;
  Counters stats;
};

std::string attrib_line(const RunRecord& r) {
  std::string out = strf("ATTRIB name=%s engine=%s agents=%u vt=%llu "
                         "speedup=%.4f work=%llu overhead=%llu "
                         "idle_charged=%llu idle_tail=%llu",
                         r.name.c_str(), r.engine, r.agents,
                         (unsigned long long)r.vt, r.speedup,
                         (unsigned long long)r.report.work,
                         (unsigned long long)r.report.overhead,
                         (unsigned long long)r.report.idle_charged,
                         (unsigned long long)r.report.idle_tail);
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    out += strf(" cat.%s=%llu", cost_cat_name(static_cast<CostCat>(i)),
                (unsigned long long)r.report.attrib.at[i]);
  }
  const SchemaSavings& sv = r.report.savings;
  out += strf(" save.flattening=%llu save.procrastination=%llu"
              " save.sequentialization=%llu save.static_elision=%llu",
              (unsigned long long)sv.flattening,
              (unsigned long long)sv.procrastination,
              (unsigned long long)sv.sequentialization,
              (unsigned long long)sv.static_elision);
  out += strf(" elide.opt_checks=%llu elide.lpco_merges=%llu"
              " elide.shallow_skipped_markers=%llu elide.pdo_merges=%llu"
              " elide.lao_reuses=%llu elide.static_elisions=%llu",
              (unsigned long long)r.stats.opt_checks,
              (unsigned long long)r.stats.lpco_merges,
              (unsigned long long)r.stats.shallow_skipped_markers,
              (unsigned long long)r.stats.pdo_merges,
              (unsigned long long)r.stats.lao_reuses,
              (unsigned long long)r.stats.static_elisions);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<unsigned> agents_list = {1, 5, 10};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--agents-list" && i + 1 < argc) {
      agents_list = parse_agents_list(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_attrib [--quick] [--agents-list 1,5,10]\n");
      return 2;
    }
  }
  if (agents_list.empty()) agents_list = {1, 5, 10};

  std::printf("==============================================================\n");
  std::printf("Overhead attribution across the workload corpus\n");
  std::printf("Cells: virtual time (relative speedup | overhead%% | idle%%)\n");
  std::printf("and-parallel: andp + LPCO/SHALLOW/PDO/LAO; or-parallel: orp + "
              "LAO%s\n\n",
              quick ? "; quick (reduced) queries" : "");

  std::vector<std::string> header{"workload"};
  for (unsigned a : agents_list) {
    header.push_back(strf("%u agent%s", a, a == 1 ? "" : "s"));
  }
  TextTable table(header);

  std::vector<RunRecord> records;
  for (const Workload& w : workloads()) {
    RunConfig cfg;
    cfg.engine = w.and_parallel ? EngineKind::Andp : EngineKind::Orp;
    if (w.and_parallel) {
      cfg.lpco = cfg.shallow = cfg.pdo = cfg.lao = true;
    } else {
      cfg.lao = true;
    }
    if (!w.all_solutions) cfg.max_solutions = 1;
    const std::string& q = quick ? w.small_query : w.query;

    std::vector<std::string> cells{w.name};
    std::uint64_t vt1 = 0;
    for (unsigned agents : agents_list) {
      cfg.agents = agents;
      RunOutcome out = run_workload(w, cfg, q);

      SolveResult synth;  // analyze_speedup consumes a SolveResult shape
      synth.virtual_time = out.virtual_time;
      synth.stats = out.stats;
      synth.attrib = out.attrib;
      synth.agent_clocks = out.agent_clocks;
      synth.savings = out.savings;
      SpeedupReport rep = analyze_speedup(synth, agents);

      if (vt1 == 0) vt1 = out.virtual_time;
      double speedup =
          out.virtual_time == 0 ? 0.0 : double(vt1) / double(out.virtual_time);
      std::uint64_t budget = std::uint64_t{agents} * rep.makespan;
      auto pct = [&](std::uint64_t v) {
        return budget == 0 ? 0.0 : 100.0 * double(v) / double(budget);
      };
      cells.push_back(strf("%llu (%.2fx|%.1f%%|%.1f%%)",
                           (unsigned long long)out.virtual_time, speedup,
                           pct(rep.overhead),
                           pct(rep.idle_charged + rep.idle_tail)));

      RunRecord rec;
      rec.name = w.name;
      rec.engine = w.and_parallel ? "andp" : "orp";
      rec.agents = agents;
      rec.vt = out.virtual_time;
      rec.speedup = speedup;
      rec.report = rep;
      rec.stats = out.stats;
      records.push_back(std::move(rec));
    }
    table.add_row(std::move(cells));
  }

  std::printf("%s\n", table.render().c_str());
  for (const RunRecord& r : records) {
    std::printf("%s\n", attrib_line(r).c_str());
  }
  return 0;
}
