// Table 5: processor determinacy optimization (merging sequentially
// adjacent subgoals executed by the same agent).
#include "bench_common.hpp"

int main() {
  ace::bench::TableSpec spec;
  spec.title = "Table 5 — Processor Determinacy Optimization";
  spec.paper_ref =
      "Gupta & Pontelli IPPS'97, Table 5: unoptimized/optimized execution "
      "times (msec) with PDO";
  spec.paper_numbers =
      "  matrix mult(30)  1p: 5598/5207 (8%)   3p: 1954/1765 (11%)  "
      "5p: 1145/1067 (7%)   10p: 573/536 (7%)\n"
      "  quick_sort(10)   1p: 1882/1503 (25%)  3p: 778/621 (25%)    "
      "5p: 548/443 (23%)    10p: 442/367 (20%)\n"
      "  takeuchi(14)     1p: 2366/1632 (45%)  3p: 832/600 (39%)    "
      "5p: 521/388 (34%)    10p: 252/200 (26%)\n"
      "  poccur(5)        1p: 3651/3104 (15%)  3p: 1255/1061 (18%)  "
      "5p: 759/649 (17%)    10p: 430/353 (22%)\n"
      "  bt_cluster       1p: 1461/1330 (10%)  3p: 528/482 (10%)    "
      "5p: 345/294 (17%)    10p: 202/165 (22%)\n"
      "  annotator(5)     1p: 1615/1298 (24%)  3p: 556/454 (23%)    "
      "5p: 392/302 (30%)    10p: 213/171 (25%)";
  spec.rows = {
      {"matrix mult", "matrix", ""},
      {"quick_sort", "quick_sort", ""},
      {"takeuchi", "takeuchi", ""},
      {"poccur", "occur", ""},
      {"bt_cluster", "bt_cluster", ""},
      {"annotator", "annotator", ""},
  };
  spec.agents = {1, 3, 5, 10};
  spec.engine = ace::EngineKind::Andp;
  spec.pdo = true;
  ace::bench::run_paper_table(spec);
  return 0;
}
