// Static-facts elision benchmark: for each optimization-heavy workload,
// the charged runtime applicability checks (CostModel::opt_check) with and
// without load-time static facts, and the resulting virtual-time delta.
//
// With --static-facts, a check whose outcome the analyzer proved at load
// time is not charged (it still runs); the `elided` column counts those,
// `checks` is what remains charged. Solutions are identical by
// construction — the harness asserts it for every row.
#include <algorithm>

#include "analysis/static_facts.hpp"
#include "bench_common.hpp"
#include "builtins/lib.hpp"

int main() {
  using namespace ace;
  std::printf("==============================================================\n");
  std::printf("Static facts — opt-check elision (charged checks and time)\n\n");

  {
    // Facts inventory per workload, from the load-time pass itself.
    TextTable table({"benchmark", "preds", "det", "det_ix", "no_choice",
                     "lao_chain", "ground_on_succ"});
    for (const char* name :
         {"map1", "map2", "matrix_bt", "occur", "takeuchi", "members",
          "queens1"}) {
      Database db;
      load_library(db);
      db.consult(workload(name).source);
      StaticFactsReport rep = compute_static_facts(db);
      table.add_row({name, strf("%zu", rep.preds_analyzed),
                     strf("%zu", rep.det), strf("%zu", rep.det_indexed),
                     strf("%zu", rep.no_choice), strf("%zu", rep.lao_chain),
                     strf("%zu", rep.ground_on_success)});
    }
    std::printf("Analyzer facts (program + library predicates):\n%s\n",
                table.render().c_str());
  }

  {
    TextTable table({"benchmark", "agents", "checks", "time", "checks+sf",
                     "elided", "time+sf", "dT%"});
    struct Row {
      const char* name;
      EngineKind engine;
    };
    const Row rows[] = {
        {"map1", EngineKind::Andp},      {"map2", EngineKind::Andp},
        {"matrix_bt", EngineKind::Andp}, {"occur", EngineKind::Andp},
        {"takeuchi", EngineKind::Andp},  {"members", EngineKind::Orp},
        {"queens1", EngineKind::Orp},
    };
    for (const Row& row : rows) {
      const Workload& w = workload(row.name);
      for (unsigned agents : {1u, 5u, 10u}) {
        RunConfig off;
        off.engine = row.engine;
        off.agents = agents;
        if (row.engine == EngineKind::Andp) {
          off.lpco = off.shallow = off.pdo = true;
        } else {
          off.lao = true;
        }
        RunConfig on = off;
        on.static_facts = true;

        RunOutcome base = run_workload(w, off);
        RunOutcome sf = run_workload(w, on);
        // Same multiset of solutions; the *order* may differ for the
        // or-parallel engine because elided charges change the virtual-time
        // schedule (as any cost-affecting flag does).
        std::vector<std::string> a = base.solutions;
        std::vector<std::string> b = sf.solutions;
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        if (a != b) {
          std::fprintf(stderr,
                       "FATAL: %s x%u: solutions differ under "
                       "--static-facts\n",
                       row.name, agents);
          return 1;
        }
        const double dt =
            base.virtual_time == 0
                ? 0.0
                : 100.0 *
                      (double(base.virtual_time) - double(sf.virtual_time)) /
                      double(base.virtual_time);
        table.add_row({row.name, strf("%u", agents),
                       strf("%llu", (unsigned long long)base.stats.opt_checks),
                       strf("%llu", (unsigned long long)base.virtual_time),
                       strf("%llu", (unsigned long long)sf.stats.opt_checks),
                       strf("%llu",
                            (unsigned long long)sf.stats.static_elisions),
                       strf("%llu", (unsigned long long)sf.virtual_time),
                       strf("%.2f", dt)});
      }
    }
    std::printf(
        "Elision (andp: +lpco+shallow+pdo; orp: +lao; sf = static facts):\n"
        "%s\n",
        table.render().c_str());
  }
  return 0;
}
