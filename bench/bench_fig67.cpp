// Figures 6 and 7 — the member/compute or-tree, unflattened vs flattened.
//
// The paper draws the search tree of
//     ?- member(V, [1,2,3,4]), compute(V, R).
// without LAO (Figure 6: a chain of choice points, one per member level)
// and with LAO (Figure 7: all alternatives clubbed at a single reused
// choice point). This bench reproduces the structural claim with counters:
// choice points allocated, reuses, public nodes created during sharing,
// and take attempts while drained.
#include "bench_common.hpp"

int main() {
  using namespace ace;
  std::printf("==============================================================\n");
  std::printf("Figures 6/7 — structure of the member/compute or-tree\n");
  std::printf("Reproduces: IPPS'97 Figures 6 and 7 (LAO flattens the chain "
              "of member choice points into one reused node)\n\n");

  TextTable table({"list length", "agents", "LAO", "choicepoints",
                   "reused", "sessions", "node takes"});
  for (unsigned len : {20u, 60u, 120u}) {
    for (unsigned agents : {1u, 8u}) {
      for (bool lao : {false, true}) {
        const Workload& w = workload("members");
        RunConfig cfg;
        cfg.engine = EngineKind::Orp;
        cfg.agents = agents;
        cfg.lao = lao;
        RunOutcome r = run_workload(
            w, cfg, strf("members(%u, V, R).", len));
        table.add_row(
            {strf("%u", len), strf("%u", agents), lao ? "on" : "off",
             strf("%llu", (unsigned long long)r.stats.choicepoints),
             strf("%llu", (unsigned long long)r.stats.lao_reuses),
             strf("%llu", (unsigned long long)r.stats.sharing_sessions),
             strf("%llu", (unsigned long long)r.stats.public_node_takes)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "With LAO the member recursion reuses one choice point per level\n"
      "(compare 'choicepoints' vs 'reused'): Figure 7's single clubbed\n"
      "node. Idle agents then find alternatives without walking a chain\n"
      "(fewer sharing sessions and drained-node take attempts).\n");
  return 0;
}
