// bench_serve: closed-loop load generator for the serving layer.
//
// Measures what the engine pool buys: the same query mix is driven through
// a QueryService twice — once with a warm pool (sessions reused across
// queries) and once with the pool disabled (every query pays Store/Worker
// construction and chunk-table zeroing). Reports throughput and latency
// percentiles as JSON, one object per configuration:
//
//   {"mode":"reuse","workload":"queens1","queries":256,"threads":4,
//    "clients":8,"throughput_qps":...,"p50_us":...,"p99_us":...,
//    "mean_us":...,"pool_hit_rate":0.97}
//
// The closed loop keeps `clients` requests in flight per thread-pool pass:
// each completed response immediately funds the next submission, so the
// admission queue never overflows and the measured latency is service
// latency, not self-inflicted queueing.
//
//   bench_serve [--queries N] [--threads N] [--clients N]
//               [--workload name] [--engines seq,andp,orp]
//               [--trace FILE]   record the reuse pass with the obs layer
//                                and write Chrome trace_event JSON
//
// --soak runs the fixed mixed-workload scenario suite instead (seq_small,
// mixed_engines, tabled_cache, assert_churn, plus the result-cache pair
// repeat_nocache/repeat_cache and the shard-scaling pair
// tenants_1shard/tenants_4shard) and emits one machine-readable
// `ATTRIB name=... engine=serve agents=...` line per scenario with
// throughput (qps), latency percentiles and — for cache-fronted scenarios —
// the cache hit rate. That stream is the input of
//
//   bench_serve --soak | bench_to_json > BENCH_serve.json
//
// which is the checked-in serving-performance trajectory gated in CI
// (higher-is-better qps with a generous collapse tolerance; the latency
// fields ride along as data). --smoke shrinks the per-scenario query count
// for CI runners; the scenario keys stay identical so the documents stay
// comparable. --check additionally asserts the two structural claims the
// topology makes — repeat_cache beats repeat_nocache by >= 2x qps, and
// tenants_4shard beats tenants_1shard by >= 1.15x qps — and fails the run
// when either does not hold.
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "builtins/lib.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "serve/service.hpp"

namespace {

using namespace ace;
using SteadyClock = std::chrono::steady_clock;

struct BenchConfig {
  std::size_t queries = 256;
  unsigned threads = 4;
  std::size_t clients = 8;  // max in-flight submissions
  std::string workload_name = "queens1";
  std::string query;  // default: workload small query
  bool use_seq = true;
  bool use_andp = true;
  bool use_orp = true;
  // Soak-scenario knob: every 8th query asserts and retracts a dynamic
  // fact, exercising the database write path (epoch bumps, index
  // republication, table invalidation hooks) under serving load.
  bool churn = false;
  // Sharded/cached topology knobs (defaults = historical single-pool,
  // cache-off service).
  unsigned shards = 1;
  std::size_t cache_capacity = 0;
  // When > 0, request i carries tenant "t<i % tenants>" so the service
  // spreads the closed loop across its shards.
  unsigned tenants = 0;
};

const char kChurnQuery[] = "assertz(churn_fact(1)), retract(churn_fact(1)).";

EngineConfig engine_for(const BenchConfig& bc, std::size_t i) {
  std::vector<EngineConfig> mix;
  if (bc.use_seq) mix.push_back(EngineConfig{});
  if (bc.use_andp) {
    EngineConfig c;
    c.mode = EngineMode::Andp;
    c.agents = 4;
    c.lpco = c.shallow = c.pdo = true;
    mix.push_back(c);
  }
  if (bc.use_orp) {
    EngineConfig c;
    c.mode = EngineMode::Orp;
    c.agents = 4;
    c.lao = true;
    mix.push_back(c);
  }
  return mix[i % mix.size()];
}

struct Measurement {
  double seconds = 0;
  ServeMetricsSnapshot metrics;
};

Measurement drive(Database& db, const BenchConfig& bc,
                  std::size_t pool_capacity,
                  obs::Recorder* recorder = nullptr) {
  ServiceOptions opts;
  opts.shards = bc.shards;
  opts.dispatch_threads = bc.threads;
  opts.queue_capacity = bc.clients + bc.threads + 8;  // per shard
  opts.pool_capacity = pool_capacity;
  opts.result_cache_capacity = bc.cache_capacity;
  opts.obs.recorder = recorder;
  QueryService service(db, opts);

  SteadyClock::time_point t0 = SteadyClock::now();
  std::deque<QueryService::Ticket> inflight;
  for (std::size_t i = 0; i < bc.queries; ++i) {
    if (inflight.size() >= bc.clients) {
      QueryResult resp = inflight.front().result.get();
      inflight.pop_front();
      if (!resp.completed()) {
        throw AceError(std::string("bench query failed: ") +
                       query_outcome_name(resp.outcome) + " " + resp.error);
      }
    }
    QueryRequestBuilder req((bc.churn && i % 8 == 7) ? kChurnQuery
                                                     : bc.query);
    req.engine(engine_for(bc, i));
    if (bc.tenants > 0) {
      req.tenant("t" + std::to_string(i % bc.tenants));
    }
    inflight.push_back(service.submit(std::move(req).build()));
  }
  while (!inflight.empty()) {
    QueryResult resp = inflight.front().result.get();
    inflight.pop_front();
    if (!resp.completed()) {
      throw AceError(std::string("bench query failed: ") +
                     query_outcome_name(resp.outcome) + " " + resp.error);
    }
  }
  Measurement m;
  m.seconds = std::chrono::duration<double>(SteadyClock::now() - t0).count();
  m.metrics = service.metrics_snapshot();
  service.shutdown();
  return m;
}

void report(const char* mode, const BenchConfig& bc, const Measurement& m) {
  const LatencyHistogram::Snapshot& lat = m.metrics.latency;
  std::printf(
      "{\"mode\":\"%s\",\"workload\":\"%s\",\"queries\":%zu,\"threads\":%u,"
      "\"clients\":%zu,\"throughput_qps\":%.1f,\"mean_us\":%.1f,"
      "\"p50_us\":%llu,\"p99_us\":%llu,\"max_us\":%llu,"
      "\"pool_hit_rate\":%.3f}\n",
      mode, bc.workload_name.c_str(), bc.queries, bc.threads, bc.clients,
      double(bc.queries) / m.seconds, lat.mean_us(),
      (unsigned long long)lat.percentile_us(0.50),
      (unsigned long long)lat.percentile_us(0.99),
      (unsigned long long)lat.max_us, m.metrics.pool_hit_rate());
}

// ---- --soak: the fixed mixed-workload scenario suite ----------------------

struct SoakScenario {
  const char* name;
  const char* workload;
  bool use_seq, use_andp, use_orp;
  bool churn;
  unsigned shards;             // 1 = historical single-pool topology
  std::size_t cache_capacity;  // 0 = result cache off
  unsigned tenants;            // 0 = no tenant keys (route by query)
  unsigned threads_override;   // 0 = use the CLI thread count
  // 0 = use the CLI client count. The shard-scaling pair needs a wide
  // in-flight window: the closed loop waits on its *oldest* ticket, so a
  // narrow window serializes behind whichever shard holds it and the
  // extra shards idle.
  std::size_t clients_override;
};

// The serving profiles the dashboard cares about: pure sequential small
// queries (baseline), a seq/andp/orp engine mix (pool keyed by config),
// tabled queries answered from the shared memo cache, a workload that
// mutates the database while serving, the result-cache A/B pair (same
// repeated query with the cache off vs fronting the engines), and the
// shard-scaling A/B pair (16 tenants driven through 1 vs 4 single-thread
// shards — one engine per shard, so added shards are the only lever).
const SoakScenario kSoakScenarios[] = {
    {"seq_small", "queens1", true, false, false, false, 1, 0, 0, 0, 0},
    {"mixed_engines", "queens1", true, true, true, false, 1, 0, 0, 0, 0},
    {"tabled_cache", "tc_chain64", true, false, false, false, 1, 0, 0, 0, 0},
    {"assert_churn", "queens1", true, false, false, true, 1, 0, 0, 0, 0},
    {"repeat_nocache", "queens1", true, false, false, false, 1, 0, 0, 0, 0},
    {"repeat_cache", "queens1", true, false, false, false, 1, 256, 0, 0, 0},
    {"tenants_1shard", "queens1", true, false, false, false, 1, 0, 16, 1, 64},
    {"tenants_4shard", "queens1", true, false, false, false, 4, 0, 16, 1, 64},
};

int run_soak(bool smoke, unsigned threads, std::size_t clients, bool check) {
  std::vector<std::pair<std::string, double>> qps_by_name;
  for (const SoakScenario& sc : kSoakScenarios) {
    BenchConfig bc;
    bc.queries = smoke ? 64 : 512;
    bc.threads = sc.threads_override != 0 ? sc.threads_override : threads;
    bc.clients = sc.clients_override != 0 ? sc.clients_override : clients;
    bc.workload_name = sc.workload;
    bc.use_seq = sc.use_seq;
    bc.use_andp = sc.use_andp;
    bc.use_orp = sc.use_orp;
    bc.churn = sc.churn;
    bc.shards = sc.shards;
    bc.cache_capacity = sc.cache_capacity;
    bc.tenants = sc.tenants;

    const Workload& w = workload(bc.workload_name);
    bc.query = w.small_query.empty() ? w.query : w.small_query;
    Database db;
    load_library(db);
    db.consult(w.source);

    BenchConfig warm = bc;
    warm.queries = 16;
    drive(db, warm, /*pool_capacity=*/16);

    Measurement m = drive(db, bc, /*pool_capacity=*/16);
    const LatencyHistogram::Snapshot& lat = m.metrics.latency;
    double qps = double(bc.queries) / m.seconds;
    qps_by_name.emplace_back(sc.name, qps);
    std::printf("%-14s %5zu queries on %-10s %9.1f q/s  p50 %6llu us  "
                "p99 %6llu us  pool hit %.2f",
                sc.name, bc.queries, sc.workload, qps,
                (unsigned long long)lat.percentile_us(0.50),
                (unsigned long long)lat.percentile_us(0.99),
                m.metrics.pool_hit_rate());
    if (m.metrics.cache_present) {
      std::printf("  cache hit %.2f", m.metrics.cache_hit_rate());
    }
    std::printf("\n");
    std::printf("ATTRIB name=%s engine=serve agents=%u queries=%zu "
                "qps=%.1f mean_us=%.1f p50_us=%llu p99_us=%llu max_us=%llu "
                "pool_hit_rate=%.3f",
                sc.name, bc.threads, bc.queries, qps, lat.mean_us(),
                (unsigned long long)lat.percentile_us(0.50),
                (unsigned long long)lat.percentile_us(0.99),
                (unsigned long long)lat.max_us, m.metrics.pool_hit_rate());
    if (m.metrics.cache_present) {
      std::printf(" cache_hit_rate=%.3f", m.metrics.cache_hit_rate());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  if (!check) return 0;
  // Structural claims of the sharded/cached topology, enforced so a CI run
  // cannot silently regress into "the cache/shards exist but buy nothing".
  auto qps_of = [&](const char* name) {
    for (const auto& [n, q] : qps_by_name) {
      if (n == name) return q;
    }
    return 0.0;
  };
  int failures = 0;
  const double cache_ratio = qps_of("repeat_cache") / qps_of("repeat_nocache");
  if (!(cache_ratio >= 2.0)) {
    std::fprintf(stderr,
                 "CHECK FAIL: repeat_cache/%s qps ratio %.2f < 2.0\n",
                 "repeat_nocache", cache_ratio);
    ++failures;
  } else {
    std::printf("CHECK ok: repeat_cache vs repeat_nocache qps x%.2f\n",
                cache_ratio);
  }
  // Cross-shard scaling is real-thread parallelism (one dispatch thread
  // per shard), so it can only show up when the hardware has cores to run
  // them on — skip the assertion (not the measurement) on 1-core boxes.
  const unsigned hc = std::thread::hardware_concurrency();
  const double shard_ratio =
      qps_of("tenants_4shard") / qps_of("tenants_1shard");
  if (hc < 2) {
    std::printf(
        "CHECK skip: tenants_4shard vs tenants_1shard qps x%.2f "
        "(only %u hardware thread(s); scaling needs >= 2)\n",
        shard_ratio, hc);
  } else if (!(shard_ratio >= 1.15)) {
    std::fprintf(stderr,
                 "CHECK FAIL: tenants_4shard/%s qps ratio %.2f < 1.15\n",
                 "tenants_1shard", shard_ratio);
    ++failures;
  } else {
    std::printf("CHECK ok: tenants_4shard vs tenants_1shard qps x%.2f\n",
                shard_ratio);
  }
  std::fflush(stdout);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig bc;
  std::string trace_path;
  bool soak = false;
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--queries") {
      bc.queries = std::stoul(next());
    } else if (arg == "--threads") {
      bc.threads = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--clients") {
      bc.clients = std::stoul(next());
    } else if (arg == "--workload") {
      bc.workload_name = next();
    } else if (arg == "--query") {
      bc.query = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--engines") {
      std::string mix = next();
      bc.use_seq = mix.find("seq") != std::string::npos;
      bc.use_andp = mix.find("andp") != std::string::npos;
      bc.use_orp = mix.find("orp") != std::string::npos;
    } else if (arg == "--soak") {
      soak = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--check") {
      check = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  try {
    if (soak) return run_soak(smoke, bc.threads, bc.clients, check);

    const Workload& w = workload(bc.workload_name);
    if (bc.query.empty()) {
      bc.query = w.small_query.empty() ? w.query : w.small_query;
    }
    Database db;
    load_library(db);
    db.consult(w.source);

    // Warmup outside measurement (symbol interning, first-build indexes).
    {
      BenchConfig warm = bc;
      warm.queries = std::min<std::size_t>(bc.queries, 16);
      drive(db, warm, /*pool_capacity=*/16);
    }

    // cold: pool disabled — every query constructs a fresh engine.
    Measurement cold = drive(db, bc, /*pool_capacity=*/0);
    report("cold", bc, cold);

    // reuse: warm pool — queries run on recycled sessions. The optional
    // trace records this pass: the interesting one, where checkouts hit.
    std::unique_ptr<obs::Recorder> recorder;
    if (!trace_path.empty()) recorder = std::make_unique<obs::Recorder>();
    Measurement reuse = drive(db, bc, /*pool_capacity=*/16, recorder.get());
    report("reuse", bc, reuse);

    std::printf("{\"speedup_reuse_over_cold\":%.3f}\n",
                cold.seconds / reuse.seconds);

    if (recorder != nullptr) {
      std::string json = obs::chrome_trace_json(*recorder);
      std::string err;
      if (!obs::validate_chrome_trace(json, &err)) {
        std::fprintf(stderr, "error: trace export failed validation: %s\n",
                     err.c_str());
        return 2;
      }
      std::ofstream out(trace_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        return 2;
      }
      out << json;
      std::fprintf(stderr, "trace: %llu events -> %s\n",
                   (unsigned long long)recorder->total_events(),
                   trace_path.c_str());
    }
    return 0;
  } catch (const ace::AceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
