// Table 4: shallow parallelism optimization (procrastinated markers).
#include "bench_common.hpp"

int main() {
  ace::bench::TableSpec spec;
  spec.title = "Table 4 — Shallow Parallelism Optimization";
  spec.paper_ref =
      "Gupta & Pontelli IPPS'97, Table 4: unoptimized/optimized execution "
      "times with the shallow parallelism optimization";
  spec.paper_numbers =
      "  matrix mult  1p: 5.59/5.2 (13%)  3p: 1.9/1.7 (11%)  "
      "5p: 1.1/1.0 (9%)    10p: .57/.53 (7%)\n"
      "  takeuchi     1p: 2.4/1.8 (25%)   3p: .83/.58 (30%)  "
      "5p: .52/.36 (31%)   10p: .25/.20 (20%)\n"
      "  hanoi        1p: 2.2/1.6 (27%)   3p: .76/.55 (28%)  "
      "5p: .47/.33 (30%)   10p: .23/.18 (22%)\n"
      "  occur        1p: 3.6/3.1 (14%)   3p: 1.2/1.0 (17%)  "
      "5p: .75/.66 (12%)   10p: .43/.37 (14%)\n"
      "  bt_cluster   1p: 1.4/1.3 (7%)    3p: .52/.48 (8%)   "
      "5p: .34/.31 (9%)    10p: .20/.18 (10%)\n"
      "  annotator    1p: 1.6/1.4 (13%)   3p: .55/.47 (15%)  "
      "5p: .39/.32 (18%)   10p: .21/.18 (14%)";
  spec.rows = {
      {"matrix mult", "matrix", ""},
      {"takeuchi", "takeuchi", ""},
      {"hanoi", "hanoi", ""},
      {"occur", "occur", ""},
      {"bt_cluster", "bt_cluster", ""},
      {"annotator", "annotator", ""},
  };
  spec.agents = {1, 3, 5, 10};
  spec.engine = ace::EngineKind::Andp;
  spec.shallow = true;
  ace::bench::run_paper_table(spec);
  return 0;
}
