// Figure 8: execution-time curves with/without the shallow parallelism
// optimization (the optimized curve sits uniformly below).
#include "bench_common.hpp"

int main() {
  ace::bench::CurveSpec spec;
  spec.title =
      "Figure 8 — execution time vs agents (shallow parallelism off/on)";
  spec.paper_ref =
      "Gupta & Pontelli IPPS'97, Figure 8: Poccur, Annotator and Hanoi "
      "execution-time curves, optimized curve below unoptimized";
  spec.rows = {
      {"poccur", "occur", ""},
      {"annotator", "annotator", ""},
      {"hanoi", "hanoi", ""},
  };
  spec.max_agents = 10;
  spec.engine = ace::EngineKind::Andp;
  spec.shallow = true;
  spec.print_speedup = false;  // the paper plots raw times here
  ace::bench::run_paper_curves(spec);
  return 0;
}
