// Shared bench harness: runs workloads across agent counts with an
// optimization toggled off/on and prints the paper's
// `unoptimized/optimized (improvement%)` table layout, followed by the
// numbers the paper reports for side-by-side shape comparison.
//
// Times are virtual-time units from the deterministic simulator — absolute
// values are not comparable to the paper's seconds; the reproduction target
// is the *shape* (sign and rough magnitude of improvements, their growth
// with agent count). See EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "support/strutil.hpp"
#include "support/table.hpp"
#include "workloads/harness.hpp"

namespace ace::bench {

struct Row {
  std::string label;
  std::string workload;
  std::string query;  // empty = workload default
};

struct TableSpec {
  std::string title;
  std::string paper_ref;      // e.g. "Table 2 (LPCO, backward execution)"
  std::string paper_numbers;  // the paper's reported rows, verbatim-ish
  std::vector<Row> rows;
  std::vector<unsigned> agents;
  EngineKind engine = EngineKind::Andp;
  // Optimization flags enabled in the "optimized" runs.
  bool lpco = false, shallow = false, pdo = false, lao = false;
};

inline RunConfig make_config(const TableSpec& spec, unsigned agents,
                             bool optimized) {
  RunConfig cfg;
  cfg.engine = spec.engine;
  cfg.agents = agents;
  if (optimized) {
    cfg.lpco = spec.lpco;
    cfg.shallow = spec.shallow;
    cfg.pdo = spec.pdo;
    cfg.lao = spec.lao;
  }
  return cfg;
}

inline void run_paper_table(const TableSpec& spec) {
  std::printf("==============================================================\n");
  std::printf("%s\n", spec.title.c_str());
  std::printf("Reproduces: %s\n", spec.paper_ref.c_str());
  std::printf("Cells: unoptimized/optimized virtual time (improvement%%)\n\n");

  std::vector<std::string> header{"benchmark"};
  for (unsigned a : spec.agents) {
    header.push_back(strf("%u agent%s", a, a == 1 ? "" : "s"));
  }
  TextTable table(header);

  for (const Row& row : spec.rows) {
    const Workload& w = workload(row.workload);
    std::vector<std::string> cells{row.label};
    for (unsigned agents : spec.agents) {
      RunOutcome base =
          run_workload(w, make_config(spec, agents, false), row.query);
      RunOutcome opt =
          run_workload(w, make_config(spec, agents, true), row.query);
      cells.push_back(paper_cell(double(base.virtual_time) / 1000.0,
                                 double(opt.virtual_time) / 1000.0));
    }
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper reported (times in their units):\n%s\n",
              spec.paper_numbers.c_str());
}

// Speedup-curve output (Figures 5 and 8): one series per (workload, flag).
struct CurveSpec {
  std::string title;
  std::string paper_ref;
  std::vector<Row> rows;
  unsigned max_agents = 10;
  EngineKind engine = EngineKind::Andp;
  bool lpco = false, shallow = false, pdo = false, lao = false;
  bool print_speedup = true;  // else raw times (Figure 8 style)
};

inline void run_paper_curves(const CurveSpec& spec) {
  std::printf("==============================================================\n");
  std::printf("%s\n", spec.title.c_str());
  std::printf("Reproduces: %s\n\n", spec.paper_ref.c_str());

  std::vector<std::string> header{"series"};
  for (unsigned a = 1; a <= spec.max_agents; ++a) {
    header.push_back(strf("%u", a));
  }
  TextTable table(header);

  for (const Row& row : spec.rows) {
    const Workload& w = workload(row.workload);
    for (bool optimized : {false, true}) {
      TableSpec ts;
      ts.engine = spec.engine;
      ts.lpco = spec.lpco;
      ts.shallow = spec.shallow;
      ts.pdo = spec.pdo;
      ts.lao = spec.lao;
      std::vector<std::string> cells{
          row.label + (optimized ? " (opt)" : " (no-opt)")};
      double t1 = 0;
      for (unsigned a = 1; a <= spec.max_agents; ++a) {
        RunOutcome r = run_workload(w, make_config(ts, a, optimized),
                                    row.query);
        double t = double(r.virtual_time);
        if (a == 1) t1 = t;
        if (spec.print_speedup) {
          cells.push_back(strf("%.2f", t1 / t));
        } else {
          cells.push_back(strf("%.0f", t / 1000.0));
        }
      }
      table.add_row(std::move(cells));
    }
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace ace::bench
