// bench_tab: the tabling benchmark behind BENCH_tab.json.
//
// Runs the graph workload family (workloads/graphs.hpp) on the or-parallel
// engine with LAO at 1, 5 and 10 agents. The family ships each program in a
// tabled and an untabled (`*_notab`) variant over the same edge set, so the
// paired rows quantify what SLG tabling buys: the tabled transitive closure
// is left-recursive (impossible under plain SLD), and the untabled
// comparators re-derive shared subgoals on every alternative.
//
// Prints the same two surfaces as bench_attrib: a human-readable table and
// one machine-readable `ATTRIB key=value ...` line per run, extended with
// the worker-side table counters (tab.hits, tab.misses, tab.inserts,
// tab.suspends, tab.resumes, tab.completions). The lines feed the shared
// bench pipeline:
//
//   bench_tab | bench_to_json > BENCH_tab.json
//   scripts/check_bench_regression.py BENCH_tab.json new.json
//
// Virtual times come from the deterministic simulator, so two builds of the
// same source produce byte-identical ATTRIB lines; any diff the regression
// gate sees is a real behavior change.
//
//   --quick      use each workload's reduced test query (CI smoke)
//   --agents-list A,B,C   override the 1,5,10 ladder
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "stats/attrib.hpp"
#include "stats/speedup.hpp"
#include "support/strutil.hpp"
#include "support/table.hpp"
#include "workloads/graphs.hpp"
#include "workloads/harness.hpp"

namespace {

using namespace ace;

std::vector<unsigned> parse_agents_list(const std::string& s) {
  std::vector<unsigned> out;
  std::istringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
  }
  return out;
}

struct RunRecord {
  std::string name;
  unsigned agents;
  std::uint64_t vt;
  double speedup;  // vs the 1-agent rung of the same workload
  SpeedupReport report;
  Counters stats;
};

std::string attrib_line(const RunRecord& r) {
  std::string out = strf("ATTRIB name=%s engine=orp agents=%u vt=%llu "
                         "speedup=%.4f work=%llu overhead=%llu "
                         "idle_charged=%llu idle_tail=%llu",
                         r.name.c_str(), r.agents, (unsigned long long)r.vt,
                         r.speedup, (unsigned long long)r.report.work,
                         (unsigned long long)r.report.overhead,
                         (unsigned long long)r.report.idle_charged,
                         (unsigned long long)r.report.idle_tail);
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    out += strf(" cat.%s=%llu", cost_cat_name(static_cast<CostCat>(i)),
                (unsigned long long)r.report.attrib.at[i]);
  }
  out += strf(" tab.hits=%llu tab.misses=%llu tab.inserts=%llu"
              " tab.suspends=%llu tab.resumes=%llu tab.completions=%llu"
              " solutions=%llu",
              (unsigned long long)r.stats.table_hits,
              (unsigned long long)r.stats.table_misses,
              (unsigned long long)r.stats.table_inserts,
              (unsigned long long)r.stats.table_suspends,
              (unsigned long long)r.stats.table_resumes,
              (unsigned long long)r.stats.table_completions,
              (unsigned long long)r.stats.solutions);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<unsigned> agents_list = {1, 5, 10};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--agents-list" && i + 1 < argc) {
      agents_list = parse_agents_list(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_tab [--quick] [--agents-list 1,5,10]\n");
      return 2;
    }
  }
  if (agents_list.empty()) agents_list = {1, 5, 10};

  std::printf("==============================================================\n");
  std::printf("SLG tabling on the graph workload family (orp + LAO)\n");
  std::printf("Cells: virtual time (relative speedup | solutions)\n");
  std::printf("Paired rows: <name> is tabled, <name>_notab the SLD "
              "comparator%s\n\n",
              quick ? "; quick (reduced) queries" : "");

  std::vector<std::string> header{"workload"};
  for (unsigned a : agents_list) {
    header.push_back(strf("%u agent%s", a, a == 1 ? "" : "s"));
  }
  TextTable table(header);

  std::vector<RunRecord> records;
  for (const Workload& w : graph_workloads()) {
    RunConfig cfg;
    cfg.engine = EngineKind::Orp;
    cfg.lao = true;
    if (!w.all_solutions) cfg.max_solutions = 1;
    const std::string& q = quick ? w.small_query : w.query;

    std::vector<std::string> cells{w.name};
    std::uint64_t vt1 = 0;
    for (unsigned agents : agents_list) {
      cfg.agents = agents;
      RunOutcome out = run_workload(w, cfg, q);

      SolveResult synth;  // analyze_speedup consumes a SolveResult shape
      synth.virtual_time = out.virtual_time;
      synth.stats = out.stats;
      synth.attrib = out.attrib;
      synth.agent_clocks = out.agent_clocks;
      synth.savings = out.savings;
      SpeedupReport rep = analyze_speedup(synth, agents);

      if (vt1 == 0) vt1 = out.virtual_time;
      double speedup =
          out.virtual_time == 0 ? 0.0 : double(vt1) / double(out.virtual_time);
      cells.push_back(strf("%llu (%.2fx|%llu sol)",
                           (unsigned long long)out.virtual_time, speedup,
                           (unsigned long long)out.stats.solutions));

      RunRecord rec;
      rec.name = w.name;
      rec.agents = agents;
      rec.vt = out.virtual_time;
      rec.speedup = speedup;
      rec.report = rep;
      rec.stats = out.stats;
      records.push_back(std::move(rec));
    }
    table.add_row(std::move(cells));
  }

  std::printf("%s\n", table.render().c_str());
  for (const RunRecord& r : records) {
    std::printf("%s\n", attrib_line(r).c_str());
  }
  return 0;
}
