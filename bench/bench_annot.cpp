// bench_annot: auto-parallelizer quality benchmark behind BENCH_annot.json.
//
// The paper's benchmarks carry hand '&' annotations (the corpus in
// src/workloads). This bench measures how much of that hand-tuned
// and-parallel speedup the abstract-interpretation annotator
// (analysis/annotate) recovers on its own. For every and-parallel workload
// it runs three variants:
//
//   seq    '&'-stripped source (every '&' replaced by ','), sequential
//          engine, 1 agent — the speedup baseline
//   hand   the checked-in hand annotation, andp + LPCO/SHALLOW/PDO/LAO
//   auto   ace_annotate's output over the stripped source (absint proof +
//          CGE emission, entries = the benchmark query), same engine config
//
// and prints one `ATTRIB key=value` line per run (the bench pipeline wire
// format — see bench_attrib.cpp). `auto` rows carry `recovery=` — the
// auto/hand speedup ratio at that agent count. Virtual times come from the
// deterministic simulator, so the lines are byte-stable across builds:
//
//   bench_annot | bench_to_json > BENCH_annot.json
//   scripts/check_bench_regression.py BENCH_annot.json new.json
//
//   --quick           use each workload's reduced test query (CI smoke)
//   --agents-list A,B,C   override the 1,5,10 ladder
//   --check           exit non-zero unless auto-annotation recovers >= 80%
//                     of the hand speedup at the top agent rung on >= 5
//                     workloads (the acceptance bar for the annotator)
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/annotate.hpp"
#include "support/strutil.hpp"
#include "support/table.hpp"
#include "workloads/harness.hpp"

namespace {

using namespace ace;

std::vector<unsigned> parse_agents_list(const std::string& s) {
  std::vector<unsigned> out;
  std::istringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
  }
  return out;
}

// Replaces every ' & ' with ', ': the corpus writes the parallel operator
// with surrounding spaces, so this recovers the plain sequential program.
std::string strip_annotations(std::string src) {
  std::size_t at = 0;
  while ((at = src.find(" & ", at)) != std::string::npos) {
    src.replace(at, 3, ", ");
  }
  return src;
}

RunConfig andp_config(unsigned agents) {
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = agents;
  cfg.lpco = cfg.shallow = cfg.pdo = cfg.lao = true;
  return cfg;
}

std::string attrib_line(const std::string& name, const char* engine,
                        unsigned agents, const RunOutcome& out,
                        double speedup, double recovery) {
  std::string line =
      strf("ATTRIB name=%s engine=%s agents=%u vt=%llu speedup=%.4f",
           name.c_str(), engine, agents,
           (unsigned long long)out.virtual_time, speedup);
  if (recovery >= 0.0) line += strf(" recovery=%.4f", recovery);
  line += strf(" cge_checks=%llu", (unsigned long long)out.stats.cge_checks);
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    line += strf(" cat.%s=%llu", cost_cat_name(static_cast<CostCat>(i)),
                 (unsigned long long)out.attrib.at[i]);
  }
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::vector<unsigned> agents_list = {1, 5, 10};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--agents-list" && i + 1 < argc) {
      agents_list = parse_agents_list(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_annot [--quick] [--check] "
                   "[--agents-list 1,5,10]\n");
      return 2;
    }
  }
  if (agents_list.empty()) agents_list = {1, 5, 10};
  const unsigned top = agents_list.back();

  std::printf("==============================================================\n");
  std::printf("Auto-annotation quality: hand '&' vs ace_annotate (absint+CGE)\n");
  std::printf("Speedups vs the '&'-stripped sequential run%s\n\n",
              quick ? "; quick (reduced) queries" : "");

  TextTable table({"workload", "seq vt",
                   strf("hand @%u", top), strf("auto @%u", top), "recovery"});

  std::vector<std::string> lines;
  std::size_t and_workloads = 0;
  std::size_t recovered = 0;
  for (const Workload& w : workloads()) {
    if (!w.and_parallel) continue;
    ++and_workloads;
    const std::string& q = quick ? w.small_query : w.query;

    Workload stripped = w;
    stripped.source = strip_annotations(w.source);

    SymbolTable syms;
    AnnotateOptions aopts;
    aopts.cge = true;
    aopts.entries.push_back(q);
    Workload autogen = w;
    autogen.source = annotate_program(syms, stripped.source, aopts);

    RunConfig seq_cfg;  // EngineKind::Seq, 1 agent
    if (!w.all_solutions) seq_cfg.max_solutions = 1;
    RunOutcome seq = run_workload(stripped, seq_cfg, q);
    const double seq_vt = double(seq.virtual_time);
    lines.push_back(
        attrib_line(w.name + ".seq", "seq", 1, seq, 1.0, -1.0));

    double hand_top = 0.0;
    double auto_top = 0.0;
    for (unsigned agents : agents_list) {
      RunConfig cfg = andp_config(agents);
      if (!w.all_solutions) cfg.max_solutions = 1;

      RunOutcome hand = run_workload(w, cfg, q);
      const double hand_speedup =
          hand.virtual_time == 0 ? 0.0 : seq_vt / double(hand.virtual_time);
      lines.push_back(attrib_line(w.name + ".hand", "andp", agents, hand,
                                  hand_speedup, -1.0));

      RunOutcome autod = run_workload(autogen, cfg, q);
      const double auto_speedup =
          autod.virtual_time == 0 ? 0.0 : seq_vt / double(autod.virtual_time);
      const double recovery =
          hand_speedup == 0.0 ? 1.0 : auto_speedup / hand_speedup;
      lines.push_back(attrib_line(w.name + ".auto", "andp", agents, autod,
                                  auto_speedup, recovery));

      if (agents == top) {
        hand_top = hand_speedup;
        auto_top = auto_speedup;
      }
    }

    const double recovery_top =
        hand_top == 0.0 ? 1.0 : auto_top / hand_top;
    if (recovery_top >= 0.80) ++recovered;
    table.add_row({w.name, strf("%llu", (unsigned long long)seq.virtual_time),
                   strf("%.2fx", hand_top), strf("%.2fx", auto_top),
                   strf("%.0f%%", 100.0 * recovery_top)});
  }

  std::printf("%s\n", table.render().c_str());
  for (const std::string& l : lines) std::printf("%s\n", l.c_str());

  std::printf("\n%zu/%zu and-parallel workloads recover >= 80%% of the "
              "hand-annotated speedup at %u agents\n",
              recovered, and_workloads, top);
  if (check && recovered < 5) {
    std::fprintf(stderr,
                 "bench_annot --check: FAIL — only %zu workloads recover "
                 ">= 80%% (need >= 5)\n",
                 recovered);
    return 1;
  }
  if (check) std::printf("bench_annot --check: OK\n");
  return 0;
}
