// Table 3: LAO on or-parallel benchmarks. Key shape: slight SLOWDOWN on
// one agent (the runtime check + kept-frame revisits cost), growing gains
// as agents multiply (flattened public tree = cheaper work finding).
#include "bench_common.hpp"

int main() {
  ace::bench::TableSpec spec;
  spec.title = "Table 3 — Last Alternative Optimization (or-parallel)";
  spec.paper_ref =
      "Gupta & Pontelli IPPS'97, Table 3: improvements using LAO "
      "(unoptimized/optimized), MUSE-based or-parallel engine";
  spec.paper_numbers =
      "  Queen1    1p: 3689/3889 (-5%)   2p: 2939/2129 (28%)  "
      "4p: 1959/1159 (41%)  8p: 1910/730 (62%)  10p: 1909/629 (67%)\n"
      "  Queen2    1p: 799/850 (-6%)     2p: 510/450 (12%)    "
      "4p: 320/240 (25%)    8p: 229/150 (34%)   10p: 229/149 (35%)\n"
      "  Puzzle    1p: 2939/3001 (-2%)   2p: 1529/1589 (-4%)  "
      "4p: 890/809 (9%)     8p: 540/429 (21%)   10p: 519/360 (31%)\n"
      "  Ancestors 1p: 2460/2706 (-10%)  2p: 1269/1370 (-8%)  "
      "4p: 669/629 (6%)     8p: 399/299 (25%)   10p: 340/201 (41%)\n"
      "  Members   1p: 8029/8450 (-5%)   2p: 4021/3731 (7%)   "
      "4p: 3733/2667 (29%)  8p: 3480/2080 (40%) 10p: 3400/2011 (41%)\n"
      "  Maps      1p: 35420/36240 (-2%) 2p: 21079/19879 (6%) "
      "4p: 11620/12189 (-10%) 8p: 9290/8329 (10%) 10p: 6100/7100 (-16%)";
  spec.rows = {
      {"queen1", "queens1", ""},
      {"queen2", "queens2", ""},
      {"puzzle", "puzzle", ""},
      {"ancestors", "ancestors", ""},
      {"members", "members", ""},
      {"maps", "maps", ""},
  };
  spec.agents = {1, 2, 4, 8, 10};
  spec.engine = ace::EngineKind::Orp;
  spec.lao = true;
  ace::bench::run_paper_table(spec);
  return 0;
}
