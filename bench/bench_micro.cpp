// Kernel microbenchmarks (google-benchmark): raw substrate throughput —
// unification, parsing, clause indexing, sequential resolution, virtual
// stepping. Not a paper table; useful for tracking engine regressions.
#include <benchmark/benchmark.h>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"
#include "term/unify.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

void BM_UnifyFlatStructs(benchmark::State& state) {
  SymbolTable syms;
  Store store(1);
  Trail trail;
  std::uint32_t f = syms.intern("f");
  std::vector<Addr> args1, args2;
  for (int i = 0; i < 16; ++i) {
    args1.push_back(heap_int(store, 0, i));
    args2.push_back(heap_int(store, 0, i));
  }
  Addr a = heap_struct(store, 0, f, args1);
  Addr b = heap_struct(store, 0, f, args2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unify(store, trail, a, b));
  }
}
BENCHMARK(BM_UnifyFlatStructs);

void BM_UnifyBindAndUndo(benchmark::State& state) {
  SymbolTable syms;
  Store store(1);
  Trail trail;
  Addr value = heap_int(store, 0, 42);
  for (auto _ : state) {
    std::size_t mark = trail.size();
    Addr v = store.new_var(0);
    unify(store, trail, v, value);
    untrail(store, trail, mark);
  }
}
BENCHMARK(BM_UnifyBindAndUndo);

void BM_ParseClause(benchmark::State& state) {
  SymbolTable syms;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_term_text(
        syms, "qsort([P|T], S) :- part(T, P, L, G), qsort(L, SL) & "
              "qsort(G, SG), append(SL, [P|SG], S)."));
  }
}
BENCHMARK(BM_ParseClause);

void BM_ClauseIndexLookup(benchmark::State& state) {
  Database db;
  std::string src;
  for (int i = 0; i < 200; ++i) {
    src += "edge(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  db.consult(src);
  const Predicate* p = db.find(db.syms().intern("edge"), 2);
  IndexKey key{IndexKey::Kind::Int, 137};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p->candidates(key));
  }
}
BENCHMARK(BM_ClauseIndexLookup);

void BM_SeqNrev30(benchmark::State& state) {
  Database db;
  load_library(db);
  db.consult(R"PL(
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
)PL");
  Engine eng(db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.solve("numlist(1, 30, L), nrev(L, R).", 1));
  }
}
BENCHMARK(BM_SeqNrev30);

void BM_AndpStepMatrix(benchmark::State& state) {
  for (auto _ : state) {
    RunConfig cfg;
    cfg.engine = EngineKind::Andp;
    cfg.agents = 4;
    cfg.lpco = cfg.shallow = cfg.pdo = true;
    benchmark::DoNotOptimize(run_small("matrix", cfg));
  }
}
BENCHMARK(BM_AndpStepMatrix);

void BM_OrpQueens5(benchmark::State& state) {
  for (auto _ : state) {
    RunConfig cfg;
    cfg.engine = EngineKind::Orp;
    cfg.agents = 4;
    cfg.lao = true;
    benchmark::DoNotOptimize(run_small("queens1", cfg));
  }
}
BENCHMARK(BM_OrpQueens5);

}  // namespace
}  // namespace ace

BENCHMARK_MAIN();
