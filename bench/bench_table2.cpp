// Table 2: LPCO with backward execution (large gains, growing with agents).
#include "bench_common.hpp"

int main() {
  ace::bench::TableSpec spec;
  spec.title = "Table 2 — LPCO with backward execution (backtracking)";
  spec.paper_ref =
      "Gupta & Pontelli IPPS'97, Table 2: execution time with backward "
      "execution, LPCO off/on";
  spec.paper_numbers =
      "  matrix     1p: 6.30/5.36 (15%)   3p: 2.73/1.90 (30%)   "
      "5p: 2.05/1.22 (40%)   10p: 1.54/.70 (54%)\n"
      "  pderiv     1p: 9.49/5.61 (41%)   3p: 5.88/2.75 (53%)   "
      "5p: 5.19/2.34 (55%)   10p: 6.67/2.34 (65%)\n"
      "  map1       1p: 24.21/14.98 (38%) 3p: 14.01/5.20 (63%)  "
      "5p: 12.24/3.23 (74%)  10p: 10.73/1.76 (84%)\n"
      "  annotator  1p: 3.94/3.86 (2%)    3p: 1.35/1.34 (1%)    "
      "5p: .88/.87 (1%)      10p: .49/.47 (4%)";
  spec.rows = {
      {"matrix", "matrix_bt", ""},
      {"pderiv", "pderiv_bt", ""},
      {"map1", "map1", ""},
      {"annotator", "annotator_bt", ""},
  };
  spec.agents = {1, 3, 5, 10};
  spec.engine = ace::EngineKind::Andp;
  spec.lpco = true;
  ace::bench::run_paper_table(spec);
  return 0;
}
