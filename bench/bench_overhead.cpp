// Section 5 claim: the optimizations reduce the one-agent parallel overhead
// (vs the sequential engine) from the unoptimized 10-25%% band to less than
// 5%% on average (often <2%%).
#include "bench_common.hpp"

int main() {
  using namespace ace;
  std::printf("==============================================================\n");
  std::printf("Overhead — 1-agent and-parallel engine vs sequential engine\n");
  std::printf("Reproduces: IPPS'97 §2.3 (unoptimized overhead 10-25%%) and "
              "§5 (optimized overhead <5%% avg)\n\n");

  TextTable table(
      {"benchmark", "seq", "andp (no opt)", "ovh%", "andp (all opt)", "ovh%"});

  double sum_unopt = 0, sum_opt = 0;
  int n = 0;
  for (const char* name : {"map2", "occur", "matrix", "pderiv", "takeuchi",
                           "hanoi", "bt_cluster", "quick_sort", "annotator"}) {
    const Workload& w = workload(name);
    RunConfig seq;
    seq.engine = EngineKind::Seq;
    RunConfig unopt;
    unopt.engine = EngineKind::Andp;
    unopt.agents = 1;
    RunConfig opt = unopt;
    opt.lpco = opt.shallow = opt.pdo = true;

    double ts = double(run_workload(w, seq).virtual_time);
    double tu = double(run_workload(w, unopt).virtual_time);
    double to = double(run_workload(w, opt).virtual_time);
    double ou = (tu - ts) / ts * 100.0;
    double oo = (to - ts) / ts * 100.0;
    sum_unopt += ou;
    sum_opt += oo;
    ++n;
    table.add_row({name, strf("%.0f", ts / 1000.0), strf("%.0f", tu / 1000.0),
                   strf("%+.1f%%", ou), strf("%.0f", to / 1000.0),
                   strf("%+.1f%%", oo)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Average overhead: unoptimized %+.1f%%, optimized %+.1f%%\n",
              sum_unopt / n, sum_opt / n);
  std::printf("(paper: unoptimized 10-25%%, optimized <5%% on average)\n");
  return 0;
}
